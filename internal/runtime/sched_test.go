package runtime

import (
	"sync"
	"testing"

	"repro/internal/obs"
)

func mkBatch(age int) *batch {
	return &batch{tracker: &ageTracker{age: age}, insts: []*instState{{}}}
}

// TestStealOldestFirst is the ordering contract of the stealing scheduler: a
// worker whose own deque holds only age N+1 work must steal a peer's age N
// batch (below the epoch) instead of dispatching its younger local work.
func TestStealOldestFirst(t *testing.T) {
	reg := obs.NewRegistry()
	steals := reg.Counter(obs.MStealsTotal)
	s := newStealScheduler(2, steals, nil)

	// Round-robin: the first push lands in deque 1, the second in deque 0.
	s.Push(mkBatch(1)) // deque 1 <- age 1
	s.Push(mkBatch(0)) // deque 0 <- age 0
	if s.deques[1].min.Load() != 1 || s.deques[0].min.Load() != 0 {
		t.Fatalf("unexpected deque placement: min0=%d min1=%d",
			s.deques[0].min.Load(), s.deques[1].min.Load())
	}

	// Worker 1 holds age 1 locally but the epoch is 0: it must steal the
	// age-0 batch from worker 0's deque first.
	b, ok := s.TryPop(1)
	if !ok || b.tracker.age != 0 {
		t.Fatalf("first pop got age %v (ok=%v), want steal of age 0", b, ok)
	}
	if got := steals.Load(); got != 1 {
		t.Fatalf("steals = %d, want 1", got)
	}
	b, ok = s.TryPop(1)
	if !ok || b.tracker.age != 1 {
		t.Fatalf("second pop got %v (ok=%v), want local age 1", b, ok)
	}
	// Popping own (now oldest) work is not a steal.
	if got := steals.Load(); got != 1 {
		t.Fatalf("steals after local pop = %d, want still 1", got)
	}
	if _, ok := s.TryPop(1); ok {
		t.Fatal("scheduler should be empty")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

// TestStealSchedulerEpochNeverSkipsAge pushes ages in descending order onto
// alternating deques and checks a single consumer drains them oldest-first —
// the epoch must chase every older push.
func TestStealSchedulerEpochNeverSkipsAge(t *testing.T) {
	s := newStealScheduler(4, nil, nil)
	for age := 9; age >= 0; age-- {
		s.Push(mkBatch(age))
	}
	for want := 0; want < 10; want++ {
		b, ok := s.TryPop(2)
		if !ok {
			t.Fatalf("ran dry at age %d", want)
		}
		if b.tracker.age != want {
			t.Fatalf("popped age %d, want %d", b.tracker.age, want)
		}
	}
}

// TestStealSchedulerBlockingPop checks Pop blocks until a push arrives and
// returns false after Close drains.
func TestStealSchedulerBlockingPop(t *testing.T) {
	s := newStealScheduler(2, nil, nil)
	got := make(chan int, 1)
	go func() {
		b, ok := s.Pop(0)
		if !ok {
			got <- -1
			return
		}
		got <- b.tracker.age
	}()
	s.Push(mkBatch(7))
	if age := <-got; age != 7 {
		t.Fatalf("blocked pop got %d, want 7", age)
	}
	s.Close()
	if _, ok := s.Pop(1); ok {
		t.Fatal("Pop after Close+drain should report closed")
	}
	s.Push(mkBatch(1)) // push after close is a no-op
	if s.Len() != 0 {
		t.Fatal("push after close should be ignored")
	}
}

// TestStealSchedulerConcurrent hammers the scheduler from concurrent
// producers and consumers (run under -race) and checks every batch is
// dispatched exactly once.
func TestStealSchedulerConcurrent(t *testing.T) {
	const workers, perAge, ages = 4, 50, 8
	s := newStealScheduler(workers, nil, nil)
	var wg sync.WaitGroup
	seen := make([]int, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b, ok := s.Pop(w)
				if !ok {
					return
				}
				seen[w] += len(b.insts)
			}
		}()
	}
	for a := 0; a < ages; a++ {
		for i := 0; i < perAge; i++ {
			s.Push(mkBatch(a))
		}
	}
	s.Close() // workers drain the remaining queued batches before exiting
	wg.Wait()
	total := 0
	for _, c := range seen {
		total += c
	}
	if total != perAge*ages {
		t.Fatalf("dispatched %d batches, want %d", total, perAge*ages)
	}
}
