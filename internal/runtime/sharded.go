package runtime

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// AnalyzerKind selects the dependency-analyzer implementation
// (Options.Analyzer).
type AnalyzerKind uint8

const (
	// AnalyzerSharded is the default: analyzer state is sharded by
	// (kernel, age) across N goroutines with per-shard event channels. The
	// paper's §VIII-B attributes the K-means scaling limit to the serial
	// analyzer; sharding removes that bottleneck while the scheduler's age
	// epoch preserves oldest-age-first dispatch order.
	AnalyzerSharded AnalyzerKind = iota
	// AnalyzerSerial is the single-goroutine reference analyzer (the paper's
	// dedicated analyzer thread), kept selectable for A/B comparison.
	AnalyzerSerial
)

// fieldGen identifies one generation of one field.
type fieldGen struct {
	fs *fieldState
	g  int
}

// ctlKind enumerates the cross-shard control messages. Everything that must
// be sequenced against field completeness runs through shard 0 (the
// completion authority); completeness itself fans back out as a broadcast.
type ctlKind uint8

const (
	// ctlEnsure (to shard 0) materializes a fieldAgeState so generations
	// with zero expected producers complete immediately.
	ctlEnsure ctlKind = iota
	// ctlTrackerComplete (to shard 0) runs producer/consumer accounting for
	// a finished kernel-age.
	ctlTrackerComplete
	// ctlFieldComplete (broadcast) announces a complete field generation;
	// each shard updates its completeness replica and satisfies its own
	// trackers, giving exactly-once bindsDone counting per shard.
	ctlFieldComplete
	// ctlCreateTracker (to the owning shard) bootstraps a run-once kernel.
	ctlCreateTracker
	// ctlCreateSource (to the owning shard) creates a source kernel's
	// tracker at the given age (bootstrap and the age+1 continuation).
	ctlCreateSource
)

type ctlMsg struct {
	kind ctlKind
	fs   *fieldState
	age  int
	t    *ageTracker
	ks   *kernelState
}

// shardedAnalyzer is the sharded dependency analyzer: N anShard goroutines,
// each owning the trackers whose (kernel, age) hashes to it, fed by per-shard
// event channels so workers never contend on a single analyzer inbox.
//
// Quiescence is a single atomic: pending counts every unit of in-flight work
// (buffered worker batches, injected batches, posted control messages, and
// ready-but-not-done instances). Every increment for spawned work happens
// before the spawning unit's own decrement, so pending == 0 at any instant
// proves global quiescence; shards still double-check with the activity
// counter before shutting down.
type shardedAnalyzer struct {
	n       *Node
	shards  []*anShard
	allMask uint64 // bit per shard; shard count is capped at 64

	pending  atomic.Int64
	activity atomic.Int64

	stopping     atomic.Bool
	quiesceOnce  sync.Once
	done         chan struct{}
	shutdownOnce sync.Once

	// injectEnsured dedups the one control message injected stores need: a
	// local store's producer reaches shard 0 via tracker completion, but a
	// store injected from a remote node must materialize its generation's
	// completeness state explicitly.
	injectEnsureMu sync.Mutex
	injectEnsured  map[fieldGen]struct{}

	wg sync.WaitGroup
}

// anShard is one analyzer shard: a goroutine owning the trackers of every
// (kernel, age) pair that hashes to it, its bounded event channel (workers
// and injectors), and an unbounded control mailbox (other shards; posting
// never blocks, so shards cannot deadlock on each other).
type anShard struct {
	sa *shardedAnalyzer
	n  *Node
	id int

	ch     chan []event
	mboxMu sync.Mutex
	mbox   []ctlMsg
	spare  []ctlMsg
	notify chan struct{} // cap 1: wakeup token for mailbox posts

	// kernelAges shards kernelState.ages: this shard's trackers only.
	kernelAges map[*kernelState]map[int]*ageTracker

	// complete is the shard's field-generation completeness replica, updated
	// only by ctlFieldComplete broadcasts; the intra-shard total order of
	// tracker creation vs. broadcast processing makes bindsDone and
	// whole-fetch satisfaction count exactly once.
	complete map[fieldGen]bool
	// ensured dedups ctlEnsure posts to shard 0.
	ensured map[fieldGen]bool

	dirty        map[*ageTracker]struct{}
	flushScratch []*batch

	// Instrumentation (satellites 1/2/6): per-shard event and busy-time
	// accounting plus high-water marks, max-aggregated across shards by
	// stats() so concurrent shards cannot understate a report column.
	events     counterWithBaseline
	backlogMax *obs.Gauge // nil-safe
	hAnalyze   histWithBase
	maxQueue   int
	maxBacklog int
	busyNs     int64

	// Scratch buffers (per shard, so satisfaction checks never allocate).
	idxBuf    []int
	elemBuf   [4]int
	satCoords []int
	satConstr []bool
}

// scratch returns an index-evaluation buffer of length k.
func (s *anShard) scratch(k int) []int {
	if cap(s.idxBuf) < k {
		s.idxBuf = make([]int, k)
	}
	return s.idxBuf[:k]
}

func newShardedAnalyzer(n *Node, shards int) *shardedAnalyzer {
	if shards < 1 {
		shards = 1
	}
	sa := &shardedAnalyzer{
		n:             n,
		done:          make(chan struct{}),
		allMask:       uint64(1)<<uint(shards) - 1,
		injectEnsured: make(map[fieldGen]struct{}),
	}
	buf := n.opts.EventBuffer / shards
	if buf < eventFlushThreshold {
		buf = eventFlushThreshold
	}
	sa.shards = make([]*anShard, shards)
	for i := range sa.shards {
		s := &anShard{
			sa: sa, n: n, id: i,
			ch:         make(chan []event, buf),
			notify:     make(chan struct{}, 1),
			kernelAges: make(map[*kernelState]map[int]*ageTracker),
			complete:   make(map[fieldGen]bool),
			ensured:    make(map[fieldGen]bool),
			dirty:      make(map[*ageTracker]struct{}),
			events:     newBaselined(n.reg.Counter(obs.Label(obs.MAnalyzerShardEvents, "shard", strconv.Itoa(i)))),
		}
		if n.opts.Metrics != nil {
			s.backlogMax = n.reg.Gauge(obs.Label(obs.MAnalyzerShardBacklogMax, "shard", strconv.Itoa(i)))
			s.hAnalyze = newHistBase(n.reg.Histogram(obs.Label(obs.MStageAnalyzeNs, "shard", strconv.Itoa(i))))
		}
		sa.shards[i] = s
	}
	return sa
}

// shardOf maps a (kernel, age) pair to its owning shard.
func (sa *shardedAnalyzer) shardOf(ks *kernelState, age int) int {
	if len(sa.shards) == 1 {
		return 0
	}
	h := uint64(ks.idx)*0x9E3779B97F4A7C15 + uint64(uint32(age))*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return int(h % uint64(len(sa.shards)))
}

// shardMaskForStore returns the set of shards a store event to generation g
// concerns: owners of consumer trackers whose element-fetch satisfaction
// (and, when the store grew the field, index-range growth) can depend on it.
// An empty mask means the event is dropped at the emitter — whole and slab
// fetches are satisfied by the completeness broadcast, not by store events.
func (sa *shardedAnalyzer) shardMaskForStore(fs *fieldState, g int, grew bool) uint64 {
	if fs.elemBroadcast || (grew && fs.growBroadcast) {
		return sa.allMask
	}
	var m uint64
	for _, r := range fs.elemRoutes {
		if a := g - r.off; a >= 0 {
			m |= 1 << uint(sa.shardOf(r.ks, a))
		}
	}
	if grew {
		for _, r := range fs.growRoutes {
			if a := g - r.off; a >= 0 {
				m |= 1 << uint(sa.shardOf(r.ks, a))
			}
		}
	}
	return m
}

// post delivers a control message to a shard's mailbox. It never blocks: the
// mailbox is unbounded and the notify token is best-effort (a shard drains
// its whole mailbox per wakeup).
func (sa *shardedAnalyzer) post(to int, m ctlMsg) {
	sa.pending.Add(1)
	sa.activity.Add(1)
	s := sa.shards[to]
	s.mboxMu.Lock()
	s.mbox = append(s.mbox, m)
	s.mboxMu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (sa *shardedAnalyzer) broadcast(m ctlMsg) {
	for i := range sa.shards {
		sa.post(i, m)
	}
}

// run executes the sharded analyzer to quiescence (or Stop/failure): it posts
// the bootstrap trackers, starts the shard goroutines and waits them out.
func (sa *shardedAnalyzer) run() {
	sa.bootstrap()
	for _, s := range sa.shards {
		sa.wg.Add(1)
		go s.run()
	}
	sa.wg.Wait()
}

// bootstrap creates the trackers that exist before any event: run-once
// kernels and age 0 of source kernels, each on its owning shard.
func (sa *shardedAnalyzer) bootstrap() {
	for _, ks := range sa.n.order {
		if ks.remote {
			continue
		}
		switch {
		case ks.decl.RunOnce():
			sa.post(sa.shardOf(ks, 0), ctlMsg{kind: ctlCreateTracker, ks: ks})
		case ks.decl.Source():
			sa.post(sa.shardOf(ks, 0), ctlMsg{kind: ctlCreateSource, ks: ks, age: 0})
		}
	}
}

// triggerShutdown moves the whole analyzer to the shutdown phase exactly once.
func (sa *shardedAnalyzer) triggerShutdown() {
	sa.quiesceOnce.Do(func() {
		sa.stopping.Store(true)
		close(sa.done)
	})
}

func (sa *shardedAnalyzer) shuttingDown() bool { return sa.stopping.Load() }

// injectEnsure materializes completeness state for a generation stored from
// outside the node (deduped node-wide; see shardedAnalyzer.injectEnsured).
func (sa *shardedAnalyzer) injectEnsure(fs *fieldState, g int) {
	key := fieldGen{fs, g}
	sa.injectEnsureMu.Lock()
	_, seen := sa.injectEnsured[key]
	if !seen {
		sa.injectEnsured[key] = struct{}{}
	}
	sa.injectEnsureMu.Unlock()
	if !seen {
		sa.post(0, ctlMsg{kind: ctlEnsure, fs: fs, age: g})
	}
}

// run is one shard's main loop: drain the control mailbox and event channel,
// flush partial dispatch batches at lulls, detect quiescence, block.
func (s *anShard) run() {
	defer s.sa.wg.Done()
	sa := s.sa
	for {
		s.drainMbox()
		if !s.drainCh() {
			// Channel closed: shutdown already completed elsewhere.
			s.discardMbox()
			return
		}
		if sa.shuttingDown() {
			break
		}
		if s.n.failed() {
			sa.triggerShutdown()
			break
		}
		s.flushDirty()
		if !s.n.opts.NoAutoQuiesce && sa.pending.Load() == 0 {
			// Two-phase check: pending can only be 0 when no unit of work
			// exists anywhere (increments precede the spawning unit's
			// decrement); the activity recheck guards the read pair.
			act := sa.activity.Load()
			if sa.pending.Load() == 0 && sa.activity.Load() == act {
				sa.triggerShutdown()
				break
			}
		}
		select {
		case evs, ok := <-s.ch:
			if !ok {
				s.discardMbox()
				return
			}
			s.handleBatch(evs)
		case <-s.notify:
		case <-sa.done:
		}
	}
	s.shutdown()
}

// shutdown closes the scheduler (workers exit once they drain it), arranges
// for the event channels to close after the workers stop, and discards the
// remaining inflow so no worker blocks on a full channel during teardown.
func (s *anShard) shutdown() {
	s.sa.shutdownOnce.Do(func() {
		s.n.sched.Close()
		s.n.closeEventsWhenWorkersExit()
	})
	for evs := range s.ch {
		putEventBuf(evs)
	}
	s.discardMbox()
}

// drainMbox processes every queued control message (including ones posted to
// this shard while processing).
func (s *anShard) drainMbox() {
	for {
		// The emptiness check must precede the swap: swapping on an empty
		// mailbox and returning would leave spare and mbox sharing one backing
		// array, and concurrent posts would then overwrite messages mid-drain.
		s.mboxMu.Lock()
		if len(s.mbox) == 0 {
			s.mboxMu.Unlock()
			return
		}
		ms := s.mbox
		s.mbox = s.spare[:0]
		s.mboxMu.Unlock()
		var t0 time.Time
		if s.n.stamp {
			t0 = time.Now()
		}
		for i := range ms {
			s.handleCtl(&ms[i])
			s.sa.pending.Add(-1)
		}
		if s.n.stamp {
			s.observeBusy(time.Since(t0))
		}
		s.spare = ms
	}
}

// discardMbox drops queued control messages during shutdown.
func (s *anShard) discardMbox() {
	s.mboxMu.Lock()
	s.mbox = nil
	s.mboxMu.Unlock()
}

// drainCh processes every event batch currently buffered without blocking;
// false once the channel is closed.
func (s *anShard) drainCh() bool {
	for {
		select {
		case evs, ok := <-s.ch:
			if !ok {
				return false
			}
			s.handleBatch(evs)
		default:
			return true
		}
	}
}

func (s *anShard) observeBusy(d time.Duration) {
	s.busyNs += d.Nanoseconds()
	if s.hAnalyze.enabled() {
		s.hAnalyze.Observe(d)
	}
}

// handleBatch processes one flushed batch of events and recycles the slice.
func (s *anShard) handleBatch(evs []event) {
	var t0 time.Time
	if s.n.stamp {
		t0 = time.Now()
	}
	if backlog := len(s.ch); backlog > s.maxBacklog {
		s.maxBacklog = backlog
		s.backlogMax.SetMax(int64(backlog))
	}
	s.events.Add(int64(len(evs)))
	for i := range evs {
		if s.sa.shuttingDown() {
			break
		}
		s.handle(&evs[i])
	}
	putEventBuf(evs)
	if s.n.stamp {
		s.observeBusy(time.Since(t0))
	}
	s.sa.pending.Add(-1)
}

func (s *anShard) handle(ev *event) {
	switch {
	case ev.stop:
		s.sa.triggerShutdown()
		return
	case ev.remoteDone != nil:
		s.handleRemoteDone(ev.remoteDone, ev.age)
	case ev.isDone:
		s.handleDone(ev)
	default:
		s.handleStore(ev)
	}
	s.flushReady()
}

func (s *anShard) handleCtl(m *ctlMsg) {
	switch m.kind {
	case ctlEnsure:
		s.fieldAge(m.fs, m.age)
	case ctlTrackerComplete:
		s.onTrackerComplete(m.t)
	case ctlFieldComplete:
		s.onFieldComplete(m.fs, m.age)
	case ctlCreateTracker:
		s.ensureTracker(m.ks, 0)
	case ctlCreateSource:
		s.sourceTracker(m.ks, m.age)
	}
	s.flushReady()
}

// fieldAge returns (creating on demand) the completeness state of one field
// generation. Only shard 0 — the completion authority — may call it; other
// shards post ctlEnsure. A generation with no relevant producers completes
// immediately.
func (s *anShard) fieldAge(fs *fieldState, g int) *fieldAgeState {
	if fa := fs.ages[g]; fa != nil {
		return fa
	}
	expected := 0
	for _, pe := range fs.producers {
		ae := pe.store.Age
		if ae.HasVar {
			if g-ae.Offset >= 0 {
				expected++
			}
		} else if ae.Offset == g {
			expected++
		}
	}
	fa := &fieldAgeState{expected: expected}
	fs.ages[g] = fa
	if expected == 0 {
		s.markComplete(fs, g, fa)
	}
	return fa
}

// markComplete finalizes a complete field generation on shard 0 and
// broadcasts it; each shard (including 0) reacts in onFieldComplete.
func (s *anShard) markComplete(fs *fieldState, g int, fa *fieldAgeState) {
	fa.complete = true
	fs.f.MarkComplete(g)
	s.sa.broadcast(ctlMsg{kind: ctlFieldComplete, fs: fs, age: g})
}

// ensureFieldGen makes sure completeness state for (fs, g) exists on shard 0,
// deduping repeat requests through the replica and the ensured set.
func (s *anShard) ensureFieldGen(fs *fieldState, g int) {
	key := fieldGen{fs, g}
	if s.complete[key] || s.ensured[key] {
		return
	}
	s.ensured[key] = true
	if s.id == 0 {
		s.fieldAge(fs, g)
	} else {
		s.sa.post(0, ctlMsg{kind: ctlEnsure, fs: fs, age: g})
	}
}

// handleRemoteDone (shard 0) propagates a remote kernel-age completion:
// every field generation it stores to counts the producer as done.
func (s *anShard) handleRemoteDone(ks *kernelState, age int) {
	for i := range ks.decl.Stores {
		ss := &ks.decl.Stores[i]
		g := ss.Age.Eval(age)
		fs := s.n.fields[ss.Field]
		fa := s.fieldAge(fs, g)
		fa.producersDone++
		if fa.producersDone == fa.expected && !fa.complete {
			s.markComplete(fs, g, fa)
		}
	}
}

// ensureTracker returns the tracker for (kernel, age), creating it — with a
// full satisfaction scan over current field state — when it does not exist.
// The caller must be the owning shard. Field extents are read through the
// field's own lock; any store racing the scan re-arrives as a routed event,
// where growth and satisfaction re-checks are idempotent.
func (s *anShard) ensureTracker(ks *kernelState, age int) (*ageTracker, bool) {
	if age < 0 || age > s.n.opts.MaxAge || age > s.n.kernelMaxAge(ks) {
		return nil, false
	}
	ages := s.kernelAges[ks]
	if t := ages[age]; t != nil {
		return t, false
	}
	if ks.remote || ks.decl.Source() || (ks.decl.RunOnce() && age != 0) {
		return nil, false
	}
	t := &ageTracker{ks: ks, age: age, extents: make([]int, len(ks.binds))}
	if ks.needsInstMap {
		t.inst = make(map[int64]*instState)
	}
	if ages == nil {
		ages = make(map[int]*ageTracker)
		s.kernelAges[ks] = ages
	}
	ages[age] = t
	bindDone := 0
	for i, b := range ks.binds {
		ga := b.age.Eval(age)
		t.extents[i] = b.fs.f.Extent(ga, b.dim)
		s.ensureFieldGen(b.fs, ga)
		if s.complete[fieldGen{b.fs, ga}] {
			bindDone++
		}
	}
	t.bindsDone = bindDone
	t.domainFinal = bindDone == len(ks.binds)
	if len(ks.binds) == 0 {
		s.createSingle(t)
	} else {
		from := make([]int, len(ks.binds))
		s.createInstances(t, from, t.extents)
	}
	s.maybeTrackerDone(t)
	return t, true
}

// sourceTracker creates the single-instance tracker for a source kernel at
// the given age; the instance is immediately runnable.
func (s *anShard) sourceTracker(ks *kernelState, age int) {
	if age > s.n.opts.MaxAge || age > s.n.kernelMaxAge(ks) || s.kernelAges[ks][age] != nil {
		return
	}
	t := &ageTracker{ks: ks, age: age, domainFinal: true}
	if ks.needsInstMap {
		t.inst = make(map[int64]*instState)
	}
	ages := s.kernelAges[ks]
	if ages == nil {
		ages = make(map[int]*ageTracker)
		s.kernelAges[ks] = ages
	}
	ages[age] = t
	s.createSingle(t)
}

// burstMask hoists the per-creation-burst part of initial satisfaction: the
// whole/slab fetch bits, which depend only on the completeness replica, are
// computed once per tracker creation or growth burst instead of per instance.
// elems reports whether element fetches remain to check per instance.
func (s *anShard) burstMask(t *ageTracker) (mask0 uint32, elems bool) {
	ks := t.ks
	for i := range ks.fetchPlans {
		fp := &ks.fetchPlans[i]
		if fp.whole || fp.slab != nil {
			g := fp.fe.Age.Eval(t.age)
			s.ensureFieldGen(fp.fs, g)
			if s.complete[fieldGen{fp.fs, g}] {
				mask0 |= uint32(1) << uint(i)
			}
		} else {
			elems = true
		}
	}
	return mask0, elems
}

func (s *anShard) createSingle(t *ageTracker) {
	mask0, elems := s.burstMask(t)
	s.newInst(t, nil, mask0, elems)
}

func (s *anShard) createInstances(t *ageTracker, from, to []int) {
	mask0, elems := s.burstMask(t)
	// Presize the tracker's instance lists for the whole burst: the new-cell
	// count is known up front, and growing element-by-element through append
	// is a measurable share of the analyzer's allocations.
	if add := boxCells(to) - boxCells(from); add > 0 {
		if t.inst == nil && cap(t.all)-len(t.all) < add {
			grown := make([]*instState, len(t.all), len(t.all)+add)
			copy(grown, t.all)
			t.all = grown
		}
		if cap(t.pending)-len(t.pending) < add {
			grown := make([]*instState, len(t.pending), len(t.pending)+add)
			copy(grown, t.pending)
			t.pending = grown
		}
	}
	newCells(from, to, func(c []int) { s.newInst(t, c, mask0, elems) })
}

// newInst registers one instance with the burst's hoisted whole/slab mask and
// checks its element fetches against current field contents.
func (s *anShard) newInst(t *ageTracker, coords []int, mask0 uint32, elems bool) {
	var is *instState
	if s.n.tracer == nil {
		is = instPool.Get().(*instState)
		is.coords = append(is.coords[:0], coords...)
		is.mask, is.st, is.readyNs, is.createdNs = mask0, instWaiting, 0, 0
	} else {
		is = &instState{coords: append([]int(nil), coords...), mask: mask0}
	}
	if s.n.stamp {
		is.createdNs = s.n.nowNs()
	}
	if t.inst != nil {
		t.inst[coordKey(coords)] = is
	} else {
		t.all = append(t.all, is)
	}
	t.total++
	ks := t.ks
	if elems {
		for i := range ks.fetchPlans {
			fp := &ks.fetchPlans[i]
			if fp.whole || fp.slab != nil {
				continue
			}
			bit := uint32(1) << uint(i)
			if is.mask&bit != 0 {
				continue
			}
			g := fp.fe.Age.Eval(t.age)
			idx := evalTerms(s.scratch(len(fp.terms)), fp.terms, is.coords)
			if _, ok := fp.fs.f.At(g, idx...); ok {
				is.mask |= bit
			}
		}
	}
	if is.mask == ks.fullMask {
		s.markReady(t, is)
	}
}

// markReady queues a fully satisfied instance on its tracker's pending list.
// The quiescence count includes it from this moment (not from batch flush),
// so a shard blocking with unflushed partial batches can never be mistaken
// for quiescent by a peer.
func (s *anShard) markReady(t *ageTracker, is *instState) {
	is.st = instQueued
	if s.n.stamp {
		is.readyNs = s.n.nowNs()
		t.ks.stageReady.Observe(time.Duration(is.readyNs - is.createdNs))
	}
	t.pending = append(t.pending, is)
	s.dirty[t] = struct{}{}
	s.sa.pending.Add(1)
}

// setBit records that one fetch of one instance is satisfied.
func (s *anShard) setBit(t *ageTracker, is *instState, bit uint32) {
	if is.st != instWaiting || is.mask&bit != 0 {
		return
	}
	is.mask |= bit
	if is.mask == t.ks.fullMask {
		s.markReady(t, is)
	}
}

// flushReady moves full-granularity batches of ready instances to the
// scheduler in one PushBulk (single epoch update and waiter wakeup); partial
// batches wait for a lull (flushDirty), so stragglers are never stranded but
// the batching amortization is preserved.
func (s *anShard) flushReady() {
	if len(s.dirty) == 0 {
		return
	}
	for t := range s.dirty {
		s.collectBatches(t, false)
	}
	s.pushCollected()
}

func (s *anShard) flushDirty() {
	if len(s.dirty) == 0 {
		return
	}
	for t := range s.dirty {
		s.collectBatches(t, true)
	}
	s.pushCollected()
}

// collectBatches carves a tracker's pending list into dispatch batches of the
// kernel's granularity, compacting the list in place (copy-down with the tail
// nilled) so neither consumed entries nor their backing array leak.
func (s *anShard) collectBatches(t *ageTracker, partial bool) {
	g := int(t.ks.gran.Load())
	if g < 1 {
		g = 1
	}
	for len(t.pending) >= g || (partial && len(t.pending) > 0) {
		k := g
		if k > len(t.pending) {
			k = len(t.pending)
		}
		b := getBatch()
		b.tracker = t
		b.insts = append(b.insts[:0], t.pending[:k]...)
		rem := copy(t.pending, t.pending[k:])
		for i := rem; i < len(t.pending); i++ {
			t.pending[i] = nil
		}
		t.pending = t.pending[:rem]
		s.flushScratch = append(s.flushScratch, b)
	}
	if len(t.pending) == 0 {
		delete(s.dirty, t)
	}
}

func (s *anShard) pushCollected() {
	if len(s.flushScratch) == 0 {
		return
	}
	s.n.sched.PushBulk(s.flushScratch)
	for i := range s.flushScratch {
		s.flushScratch[i] = nil
	}
	s.flushScratch = s.flushScratch[:0]
	if depth := s.n.sched.Len(); depth > s.maxQueue {
		s.maxQueue = depth
	}
	s.updateGauges()
}

// updateGauges refreshes the node's scheduler gauges; all handles are nil
// (no-ops) unless detailed metrics are enabled.
func (s *anShard) updateGauges() {
	n := s.n
	if n.gQueue == nil {
		return
	}
	n.gQueue.Set(int64(n.sched.Len()))
	n.gBacklog.Set(int64(len(s.ch)))
	n.gOutstand.Set(s.sa.pending.Load())
}

// handleDone processes a finished instance: continuation for source kernels,
// adaptive granularity, and kernel-age completion. The quiescence decrement
// comes last, after every message the completion spawns has been posted.
func (s *anShard) handleDone(ev *event) {
	ev.inst.st = instDone
	t := ev.t
	t.done++
	ks := t.ks
	if tr := s.n.tracer; tr != nil {
		tr.Record(obs.Span{
			Name: ks.decl.Name, Cat: "commit", Ph: obs.PhaseInstant,
			TS: tr.Now(), Age: t.age, Index: ev.inst.coords,
		})
	}
	if ks.decl.Source() {
		if ev.stopped || ev.stores == 0 {
			ks.sourceStopped = true
		} else {
			next := t.age + 1
			if to := s.sa.shardOf(ks, next); to == s.id {
				s.sourceTracker(ks, next)
			} else {
				s.sa.post(to, ctlMsg{kind: ctlCreateSource, ks: ks, age: next})
			}
		}
	}
	if s.n.opts.Adaptive {
		s.adapt(ks)
	}
	s.maybeTrackerDone(t)
	s.updateGauges()
	s.sa.pending.Add(-1)
}

// adapt implements the low-level scheduler's dynamic data-granularity
// decision (§V-A). gran is atomic: trackers of the same kernel at different
// ages live on different shards.
func (s *anShard) adapt(ks *kernelState) {
	n := ks.ownInstances()
	g := ks.gran.Load()
	if n == 0 || n%128 != 0 || g >= 256 {
		return
	}
	// Means come from the timed instances only, as in the serial analyzer.
	timed := ks.timedInsts.Load()
	if timed == 0 {
		return
	}
	disp := ks.ownDispatchNs() / timed
	kern := ks.ownKernelNs() / timed
	if kern < 2*disp {
		g *= 2
		if g > 256 {
			g = 256
		}
		ks.gran.Store(g)
	}
}

func (s *anShard) maybeTrackerDone(t *ageTracker) {
	if t.completed || !t.domainFinal || t.done != t.total || len(t.pending) != 0 {
		return
	}
	t.completed = true
	if s.n.tracer == nil {
		// Recycle the instance structs (safe: every instance is done, so no
		// worker or batch will read them again). With tracing on they must
		// survive — recorded spans alias their coords.
		for _, is := range t.inst {
			instPool.Put(is)
		}
		for _, is := range t.all {
			instPool.Put(is)
		}
	}
	t.inst, t.all = nil, nil
	if s.id == 0 {
		s.onTrackerComplete(t)
	} else {
		s.sa.post(0, ctlMsg{kind: ctlTrackerComplete, t: t})
	}
}

// onTrackerComplete (shard 0) propagates a finished kernel-age: producer
// accounting on stored fields, consumer accounting (garbage collection) on
// fetched fields.
func (s *anShard) onTrackerComplete(t *ageTracker) {
	ks := t.ks
	if cb := s.n.opts.OnKernelDone; cb != nil {
		cb(ks.decl.Name, t.age)
	}
	if tr := s.n.tracer; tr != nil {
		tr.Record(obs.Span{
			Name: ks.decl.Name + " done", Cat: "lifecycle", Ph: obs.PhaseInstant,
			TS: tr.Now(), Age: t.age,
		})
	}
	if s.n.gFieldMem != nil {
		s.n.gFieldMem.Set(int64(s.n.FieldMemoryElems()))
	}
	for i := range ks.decl.Stores {
		ss := &ks.decl.Stores[i]
		g := ss.Age.Eval(t.age)
		fs := s.n.fields[ss.Field]
		fa := s.fieldAge(fs, g)
		fa.producersDone++
		if fa.producersDone == fa.expected && !fa.complete {
			s.markComplete(fs, g, fa)
		}
	}
	for i := range ks.decl.Fetches {
		fe := &ks.decl.Fetches[i]
		if !fe.Age.HasVar {
			continue // absolute-age fetches pin the generation forever
		}
		g := fe.Age.Eval(t.age)
		fs := s.n.fields[fe.Field]
		fa := s.fieldAge(fs, g)
		fa.consumersDone++
		s.gcCheck(fs, g, fa)
	}
}

// handleStore processes a store event on every shard it was routed to:
// domain growth for kernels whose index range the field defines, then fetch
// satisfaction for element-fetch consumers. Unlike the serial analyzer there
// is no completeness bookkeeping here — that is shard 0's job, reached
// through tracker completion.
func (s *anShard) handleStore(ev *event) {
	if ev.grew {
		for _, re := range ev.fs.rangeOf {
			s.forTrackers(re.ks, re.age, ev.age, true, func(t *ageTracker) {
				s.growTracker(t, re.varIdx, ev.extents[re.dim])
			})
		}
	}
	var elem []int
	if !ev.whole {
		elem = ev.elem(&s.elemBuf)
	}
	for _, ce := range ev.fs.consumers {
		if ce.terms == nil {
			continue // whole/slab fetches are satisfied by completeness, not stores
		}
		s.forTrackers(ce.ks, ce.fetch.Age, ev.age, true, func(t *ageTracker) {
			if ev.whole {
				s.scanSatisfy(t, ce)
			} else {
				s.satisfyElem(t, ce, elem)
			}
		})
	}
}

// forTrackers visits this shard's trackers of ks whose fetch/store age
// expression ae maps to field generation g. Trackers owned by other shards
// are skipped — the event or broadcast reaches them there. Freshly created
// trackers are not visited: their creation scan already covers current state.
func (s *anShard) forTrackers(ks *kernelState, ae core.AgeExpr, g int, ensure bool, visit func(*ageTracker)) {
	if ae.HasVar {
		a := g - ae.Offset
		if s.sa.shardOf(ks, a) != s.id {
			return
		}
		var t *ageTracker
		var created bool
		if ensure {
			t, created = s.ensureTracker(ks, a)
		} else {
			t = s.kernelAges[ks][a]
		}
		if t != nil && !created {
			visit(t)
		}
		return
	}
	if ae.Offset != g {
		return
	}
	for _, t := range s.kernelAges[ks] {
		visit(t)
	}
}

// growTracker extends the domain of one index variable and creates the new
// instances.
func (s *anShard) growTracker(t *ageTracker, varIdx, newExt int) {
	if t.completed || newExt <= t.extents[varIdx] {
		return
	}
	from := append([]int(nil), t.extents...)
	t.extents[varIdx] = newExt
	s.createInstances(t, from, t.extents)
}

// satisfyElem marks the fetch bit of every instance whose fetch coordinates
// match a stored element (only reachable for kernels with element fetches,
// which always carry an instance map).
func (s *anShard) satisfyElem(t *ageTracker, ce consEdge, elem []int) {
	if t.completed {
		return
	}
	nv := len(t.ks.decl.IndexVars)
	if cap(s.satCoords) < nv {
		s.satCoords = make([]int, nv)
		s.satConstr = make([]bool, nv)
	}
	coords, constrained := s.satCoords[:nv], s.satConstr[:nv]
	for i := 0; i < nv; i++ {
		coords[i], constrained[i] = 0, false
	}
	for d, term := range ce.terms {
		if term.v >= 0 {
			vi := term.v
			c := elem[d] - term.off
			if c < 0 || c >= t.extents[vi] {
				return // instance does not exist (yet); creation scans cover it
			}
			if constrained[vi] && coords[vi] != c {
				return // e.g. fetch f(a)[x][x] with mismatched coordinates
			}
			coords[vi] = c
			constrained[vi] = true
		} else if term.off != elem[d] {
			return
		}
	}
	s.enumerate(t, coords, constrained, 0, ce.fetchBit)
}

func (s *anShard) enumerate(t *ageTracker, coords []int, constrained []bool, d int, bit uint32) {
	if d == len(coords) {
		if is := t.inst[coordKey(coords)]; is != nil {
			s.setBit(t, is, bit)
		}
		return
	}
	if constrained[d] {
		s.enumerate(t, coords, constrained, d+1, bit)
		return
	}
	for c := 0; c < t.extents[d]; c++ {
		coords[d] = c
		s.enumerate(t, coords, constrained, d+1, bit)
	}
	coords[d] = 0
}

// scanSatisfy re-checks one element fetch against current field contents for
// every instance that still misses it (used after whole/slab stores, which
// cover many elements with one event).
func (s *anShard) scanSatisfy(t *ageTracker, ce consEdge) {
	if t.completed {
		return
	}
	g := ce.fetch.Age.Eval(t.age)
	fs := s.n.fields[ce.fetch.Field]
	for _, is := range t.inst {
		if is.st != instWaiting || is.mask&ce.fetchBit != 0 {
			continue
		}
		idx := evalTerms(s.scratch(len(ce.terms)), ce.terms, is.coords)
		if _, ok := fs.f.At(g, idx...); ok {
			s.setBit(t, is, ce.fetchBit)
		}
	}
}

// onFieldComplete runs on every shard when a field generation completes:
// update the completeness replica, satisfy whole/slab fetches of this shard's
// trackers, finalize index domains bound to the field. Shard 0 additionally
// owns the garbage-collection check.
func (s *anShard) onFieldComplete(fs *fieldState, g int) {
	key := fieldGen{fs, g}
	if s.complete[key] {
		return
	}
	// Flip the replica first: a tracker created by the ensure below then
	// counts this generation in its creation scan and is skipped by
	// forTrackers, keeping bindsDone and satisfaction exactly-once.
	s.complete[key] = true
	for _, ce := range fs.consumers {
		if ce.terms != nil {
			continue
		}
		s.forTrackers(ce.ks, ce.fetch.Age, g, true, func(t *ageTracker) {
			if t.completed {
				return
			}
			for _, is := range t.inst {
				s.setBit(t, is, ce.fetchBit)
			}
			for _, is := range t.all {
				s.setBit(t, is, ce.fetchBit)
			}
		})
	}
	for _, re := range fs.rangeOf {
		reVar := re.varIdx
		s.forTrackers(re.ks, re.age, g, true, func(t *ageTracker) {
			if t.completed {
				return
			}
			// Sync the final extent (stores processed earlier already grew
			// the domain; this is a no-op safeguard).
			s.growTracker(t, reVar, fs.f.Extent(g, re.dim))
			t.bindsDone++
			if t.bindsDone == len(t.ks.binds) {
				t.domainFinal = true
				s.maybeTrackerDone(t)
			}
		})
	}
	if s.id == 0 {
		s.gcCheck(fs, g, fs.ages[g])
	}
}

// gcCheck (shard 0) garbage collects a field generation once it is complete
// and every age-variable consumer kernel-age has finished with it. Safe under
// sharding: consumer completions arrive here via ctlTrackerComplete, so when
// the count is reached the owning shards have already stopped scanning it.
func (s *anShard) gcCheck(fs *fieldState, g int, fa *fieldAgeState) {
	if !s.n.opts.GC || fa == nil || fa.collected {
		return
	}
	if !fa.complete || fs.absConsumers > 0 || fs.agedConsumers == 0 {
		return
	}
	if fa.consumersDone >= fs.agedConsumers {
		fa.collected = true
		fs.f.DropAge(g)
	}
}

// stalled describes every kernel-age that never completed, across all shards.
func (sa *shardedAnalyzer) stalled() []string {
	var out []string
	for _, s := range sa.shards {
		for ks, ages := range s.kernelAges {
			for age, t := range ages {
				if !t.completed {
					var masks string
					for _, is := range t.inst {
						masks += fmt.Sprintf(" inst%v mask=%b st=%d", is.coords, is.mask, is.st)
					}
					for _, is := range t.all {
						masks += fmt.Sprintf(" all%v mask=%b st=%d", is.coords, is.mask, is.st)
					}
					out = append(out, fmt.Sprintf("%s(age=%d): %d/%d instances done, domainFinal=%v shard=%d%s",
						ks.decl.Name, age, t.done, t.total, t.domainFinal, s.id, masks))
				}
			}
		}
	}
	sort.Strings(out)
	return out
}
