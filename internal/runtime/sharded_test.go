package runtime

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/obs"
)

// TestShardedMultiShardQuiescence runs the aging mul/sum cycle across four
// analyzer shards and requires bit-identical results to the serial reference
// analyzer: every generation of both fields, and clean auto-quiescence (the
// two-phase pending==0 protocol must neither terminate early nor hang) with
// nothing stalled.
func TestShardedMultiShardQuiescence(t *testing.T) {
	const maxAge = 40
	run := func(kind AnalyzerKind, shards int) (*Node, *Report) {
		n, err := NewNode(mulSum(t), Options{
			Workers: 4, MaxAge: maxAge, Output: io.Discard,
			Analyzer: kind, AnalyzerShards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Stalled) != 0 {
			t.Fatalf("analyzer %d stalled: %v", kind, rep.Stalled)
		}
		return n, rep
	}
	ref, refRep := run(AnalyzerSerial, 0)
	sh, shRep := run(AnalyzerSharded, 4)
	if shRep.AnalyzerShards != 4 {
		t.Fatalf("AnalyzerShards = %d, want 4", shRep.AnalyzerShards)
	}
	if refRep.AnalyzerShards != 0 {
		t.Fatalf("serial AnalyzerShards = %d, want 0", refRep.AnalyzerShards)
	}
	for _, f := range []string{"m_data", "p_data"} {
		for age := 0; age <= maxAge; age++ {
			want, err := ref.Snapshot(f, age)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sh.Snapshot(f, age)
			if err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Fatalf("%s(%d) diverged:\nserial:  %s\nsharded: %s", f, age, want, got)
			}
		}
	}
	for i, k := range refRep.Kernels {
		if g := shRep.Kernels[i]; g.Instances != k.Instances || g.StoreOps != k.StoreOps {
			t.Fatalf("kernel %s: sharded %d insts/%d stores, serial %d/%d",
				k.Name, g.Instances, g.StoreOps, k.Instances, k.StoreOps)
		}
	}
	var events int64
	for _, ev := range shRep.ShardEvents {
		events += ev
	}
	if events == 0 {
		t.Fatal("sharded run reported zero shard events")
	}
}

// TestShardedNoAutoQuiesceStop exercises the distributed-node lifecycle on a
// multi-shard analyzer: a shadow node (all kernels remote, NoAutoQuiesce)
// must accept injected stores and remote completions, report Idle once they
// are absorbed, and shut down only on Stop().
func TestShardedNoAutoQuiesceStop(t *testing.T) {
	b := core.NewBuilder("shadow")
	b.Field("data", field.Int32, 1, true)
	b.Kernel("produce").Age("a").
		Local("v", field.Int32, 0).
		Store("data", core.AgeVar(0), []core.IndexSpec{core.Lit(0)}, "v").
		Body(func(c *core.Ctx) error { return nil })
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(prog, Options{
		Workers: 2, NoAutoQuiesce: true,
		RemoteKernels:  map[string]bool{"produce": true},
		Analyzer:       AnalyzerSharded,
		AnalyzerShards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := n.Run(); err != nil {
			t.Errorf("shadow run: %v", err)
		}
	}()
	for age := 0; age < 8; age++ {
		err := n.InjectStore(StoreNotice{
			Field: "data", Age: age, Elem: []int{0},
			Value: field.Int32Val(int32(100 + age)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.InjectRemoteDone("produce", age); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !n.Idle() {
		if time.Now().After(deadline) {
			t.Fatal("shadow node never became idle")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("NoAutoQuiesce node terminated without Stop()")
	default:
	}
	n.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("node did not stop after Stop()")
	}
	for age := 0; age < 8; age++ {
		arr, err := n.Snapshot("data", age)
		if err != nil {
			t.Fatal(err)
		}
		if got := arr.At(0).Int32(); got != int32(100+age) {
			t.Fatalf("data(%d)[0] = %d, want %d", age, got, 100+age)
		}
	}
}

// TestPushBulkEpochOrdering pins the cross-shard ordering contract the
// sharded analyzer leans on: batches pushed through PushBulk in arbitrary
// age order are popped oldest-age-first by the stealing scheduler's epoch,
// regardless of which deque round-robin placement put them in.
func TestPushBulkEpochOrdering(t *testing.T) {
	s := newStealScheduler(4, nil, nil)
	rng := rand.New(rand.NewSource(11))
	var bs []*batch
	for i := 0; i < 64; i++ {
		b := getBatch()
		b.tracker = &ageTracker{age: rng.Intn(10)}
		b.insts = append(b.insts, &instState{})
		bs = append(bs, b)
	}
	// Several bulk pushes, simulating bursts from different shards.
	for i := 0; i < len(bs); i += 16 {
		s.PushBulk(bs[i : i+16])
	}
	last := -1
	for i := 0; i < len(bs); i++ {
		b, ok := s.TryPop(0)
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if b.tracker.age < last {
			t.Fatalf("pop %d: age %d after age %d — epoch ordering violated", i, b.tracker.age, last)
		}
		last = b.tracker.age
	}
	if _, ok := s.TryPop(0); ok {
		t.Fatal("queue not empty after draining")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after draining", s.Len())
	}
}

// TestShardedStatsMaxAggregation is the regression test for the report's
// high-water columns under concurrent shards: per-shard maxima must
// aggregate as a maximum (a sum over shards would fabricate a depth no
// queue ever reached, and picking shard 0 would understate the run).
func TestShardedStatsMaxAggregation(t *testing.T) {
	n, err := NewNode(mulSum(t), Options{AnalyzerShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.sh == nil || len(n.sh.shards) != 3 {
		t.Fatalf("expected 3 analyzer shards, got %+v", n.sh)
	}
	for i, s := range n.sh.shards {
		s.maxQueue = 10 * (i + 1)
		s.maxBacklog = 7 - i
		s.busyNs = int64(100 * (i + 1))
	}
	st := n.sh.stats(false)
	if st.maxQueue != 30 {
		t.Errorf("maxQueue = %d, want max across shards 30", st.maxQueue)
	}
	if st.maxBacklog != 7 {
		t.Errorf("maxBacklog = %d, want max across shards 7", st.maxBacklog)
	}
	if len(st.shardEvents) != 3 || len(st.shardBacklogMax) != 3 {
		t.Fatalf("per-shard slices: %v %v, want length 3", st.shardEvents, st.shardBacklogMax)
	}
	if st.shardBacklogMax[2] != 5 {
		t.Errorf("shardBacklogMax[2] = %d, want 5", st.shardBacklogMax[2])
	}
	rep := n.buildReport(time.Second, st)
	if rep.MaxQueueDepth != 30 || rep.MaxEventBacklog != 7 {
		t.Errorf("report marks = %d/%d, want 30/7", rep.MaxQueueDepth, rep.MaxEventBacklog)
	}
	// Merging two such reports keeps per-shard backlog maxima elementwise.
	m := MergeReports(rep, rep)
	if m.MaxQueueDepth != 30 || m.ShardMaxBacklog[0] != 7 {
		t.Errorf("merged marks = %d/%v, want 30 and elementwise max 7", m.MaxQueueDepth, m.ShardMaxBacklog)
	}
	if m.ShardEvents[0] != 2*st.shardEvents[0] {
		t.Errorf("merged ShardEvents[0] = %d, want sum", m.ShardEvents[0])
	}
}

// TestShardedMetricsSurface checks satellite instrumentation end to end: a
// multi-shard run with a registry surfaces per-shard event counters, backlog
// gauges, the analyze stage lane, and the attribution line.
func TestShardedMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	n, err := NewNode(mulSum(t), Options{
		Workers: 2, MaxAge: 12, Output: io.Discard,
		AnalyzerShards: 2, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var events int64
	for i := 0; i < 2; i++ {
		events += snap.Counters[obs.Label(obs.MAnalyzerShardEvents, "shard", fmt.Sprint(i))]
	}
	if events == 0 {
		t.Error("no per-shard event counters recorded")
	}
	if rep.Stages == nil {
		t.Fatal("no stage totals with a registry supplied")
	}
	if rep.Stages.AnalyzeNs <= 0 {
		t.Error("AnalyzeNs not recorded")
	}
	if rep.Stages.AnalyzeMaxShardNs <= 0 || rep.Stages.AnalyzeMaxShardNs > rep.Stages.AnalyzeNs {
		t.Errorf("AnalyzeMaxShardNs = %d, AnalyzeNs = %d", rep.Stages.AnalyzeMaxShardNs, rep.Stages.AnalyzeNs)
	}
	if rep.Stages.WallNs != rep.Wall.Nanoseconds() {
		t.Errorf("WallNs = %d, want %d", rep.Stages.WallNs, rep.Wall.Nanoseconds())
	}
	table := rep.Table()
	for _, want := range []string{"analyzer: 2 shards", "analyze"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
	attr := rep.Attribution()
	if !strings.Contains(attr, "analyze") {
		t.Errorf("Attribution() missing analyze lane:\n%s", attr)
	}
}
