package runtime

import (
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// TestSlabFetch exercises the paper's "kernels fetch slices of fields":
// a rank-2 field of per-block pixels, with one kernel instance per block
// fetching its 64-pixel row as a slab.
func TestSlabFetch(t *testing.T) {
	const blocks, px = 6, 8
	b := core.NewBuilder("slab")
	b.Field("pixels", field.Int32, 2, true)
	b.Field("sums", field.Int32, 1, true)

	b.Kernel("src").Age("a").
		Local("frame", field.Int32, 2).
		StoreAll("pixels", core.AgeVar(0), "frame").
		Body(func(c *core.Ctx) error {
			if c.Age() >= 3 {
				return nil
			}
			fr := c.Array("frame")
			for bl := 0; bl < blocks; bl++ {
				for p := 0; p < px; p++ {
					fr.Put(field.Int32Val(int32(c.Age()*1000+bl*10+p)), bl, p)
				}
			}
			return nil
		})

	b.Kernel("sum").Age("a").Index("b").
		Local("blk", field.Int32, 1).
		Local("s", field.Int32, 0).
		Fetch("blk", "pixels", core.AgeVar(0), core.Idx("b"), core.All()).
		Store("sums", core.AgeVar(0), []core.IndexSpec{core.Idx("b")}, "s").
		Body(func(c *core.Ctx) error {
			blk := c.Array("blk")
			if blk.Rank() != 1 || blk.Extent(0) != px {
				t.Errorf("slab shape: rank %d extent %d", blk.Rank(), blk.Extent(0))
			}
			var sum int32
			for i := 0; i < blk.Extent(0); i++ {
				sum += blk.At(i).Int32()
			}
			c.SetInt32("s", sum)
			return nil
		})

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("sum").Instances; got != 3*blocks {
		t.Errorf("sum instances = %d, want %d (one per block per age)", got, 3*blocks)
	}
	for a := 0; a < 3; a++ {
		s, _ := n.Snapshot("sums", a)
		for bl := 0; bl < blocks; bl++ {
			var want int32
			for p := 0; p < px; p++ {
				want += int32(a*1000 + bl*10 + p)
			}
			if got := s.At(bl).Int32(); got != want {
				t.Errorf("sums(%d)[%d] = %d, want %d", a, bl, got, want)
			}
		}
	}
}

// TestSlabStore exercises the bulk store path: one kernel instance per row
// fetches its row as a slab and stores a transformed row as a slab, so both
// directions move whole rows through the typed slab representation.
func TestSlabStore(t *testing.T) {
	const rows, px = 5, 8
	b := core.NewBuilder("slabstore")
	b.Field("in", field.Int32, 2, true)
	b.Field("out", field.Int32, 2, true)

	b.Kernel("src").Age("a").
		Local("frame", field.Int32, 2).
		StoreAll("in", core.AgeVar(0), "frame").
		Body(func(c *core.Ctx) error {
			if c.Age() >= 2 {
				return nil
			}
			fr := c.Array("frame")
			for r := 0; r < rows; r++ {
				for p := 0; p < px; p++ {
					fr.Put(field.Int32Val(int32(c.Age()*1000+r*10+p)), r, p)
				}
			}
			return nil
		})

	b.Kernel("double").Age("a").Index("r").
		Local("row", field.Int32, 1).
		Local("res", field.Int32, 1).
		Fetch("row", "in", core.AgeVar(0), core.Idx("r"), core.All()).
		Store("out", core.AgeVar(0), []core.IndexSpec{core.Idx("r"), core.All()}, "res").
		Body(func(c *core.Ctx) error {
			row := c.Array("row").Int32s()
			res := c.Array("res")
			res.Grow(len(row))
			out := res.Int32s()
			for i, v := range row {
				out[i] = 2 * v
			}
			return nil
		})

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Kernel("double").Instances; got != 2*rows {
		t.Errorf("double instances = %d, want %d (one per row per age)", got, 2*rows)
	}
	for a := 0; a < 2; a++ {
		s, _ := n.Snapshot("out", a)
		for r := 0; r < rows; r++ {
			for p := 0; p < px; p++ {
				want := 2 * int32(a*1000+r*10+p)
				if got := s.At(r, p).Int32(); got != want {
					t.Errorf("out(%d)[%d][%d] = %d, want %d", a, r, p, got, want)
				}
			}
		}
	}
}

func TestSlabStoreRankMismatchRejected(t *testing.T) {
	b := core.NewBuilder("bad")
	b.Field("f", field.Int32, 2, true)
	b.Kernel("k").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Local("row", field.Int32, 2). // rank-2 local for a rank-1 slab store
		Fetch("v", "f", core.AgeVar(0), core.Idx("x"), core.Lit(0)).
		Store("f", core.AgeVar(1), []core.IndexSpec{core.Idx("x"), core.All()}, "row").
		Body(nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("slab store rank mismatch should be rejected")
	}
}

func TestSlabRankMismatchRejected(t *testing.T) {
	b := core.NewBuilder("bad")
	b.Field("f", field.Int32, 2, true)
	b.Kernel("k").Age("a").Index("x").
		Local("v", field.Int32, 0). // scalar local for a rank-1 slab
		Fetch("v", "f", core.AgeVar(0), core.Idx("x"), core.All()).
		Body(nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("slab fetch into scalar local should be rejected")
	}
}

func TestFieldSlab(t *testing.T) {
	f := field.New("m", field.Int32, 2, true)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if _, err := f.Store(0, field.Int32Val(int32(i*10+j)), i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	row := f.Slab(0, []field.SlabDim{{Fixed: true, Index: 1}, {}})
	if row.Rank() != 1 || row.Extent(0) != 4 || row.At(2).Int32() != 12 {
		t.Errorf("row slab %v", row)
	}
	col := f.Slab(0, []field.SlabDim{{}, {Fixed: true, Index: 3}})
	if col.Extent(0) != 3 || col.At(2).Int32() != 23 {
		t.Errorf("col slab %v", col)
	}
	// Out-of-range fixed index yields an empty slab.
	if f.Slab(0, []field.SlabDim{{Fixed: true, Index: 9}, {}}).Len() != 0 {
		t.Error("out-of-range slab should be empty")
	}
	// Missing age yields empty.
	if f.Slab(5, []field.SlabDim{{Fixed: true, Index: 0}, {}}).Len() != 0 {
		t.Error("missing age slab should be empty")
	}
	// All dims fixed: single element delivered as extent-1... rank-0 is
	// represented as an empty rank-1 array by convention.
	one := f.Slab(0, []field.SlabDim{{Fixed: true, Index: 0}, {Fixed: true, Index: 0}})
	if one.Len() != 0 {
		t.Errorf("fully fixed slab: %v", one)
	}
}
