package runtime

import (
	"io"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/obs"
)

// busyProgram is mulSum's dataflow shape with kernel bodies that spin for a
// known time, so worker-clock stage totals dominate timer overhead and the
// attribution coverage bound is meaningful.
func busyProgram(t testing.TB, spin time.Duration) *core.Program {
	t.Helper()
	b := core.NewBuilder("busy")
	b.Field("m_data", field.Int32, 1, true)
	burn := func(c *core.Ctx) error {
		for from := time.Now(); time.Since(from) < spin; {
		}
		return nil
	}
	b.Kernel("init").
		Local("values", field.Int32, 1).
		StoreAll("m_data", core.AgeAt(0), "values").
		Body(func(c *core.Ctx) error {
			vs := c.Array("values")
			for i := 0; i < 5; i++ {
				vs.Put(field.Int32Val(int32(i)), i)
			}
			return nil
		})
	b.Kernel("work").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "m_data", core.AgeVar(0), core.Idx("x")).
		Store("m_data", core.AgeVar(1), []core.IndexSpec{core.Idx("x")}, "value").
		Body(burn)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestStageAttributionCoverage checks the tentpole acceptance bound: the
// worker-clock stages (fetch, exec, store, idle) attribute nearly all of the
// run's worker-seconds. One worker keeps the run unoversubscribed on any
// host (see the Coverage doc: runnable-but-descheduled time is invisible),
// and the spin keeps per-instance work two orders above timer overhead, so
// the bound is stable even on single-core CI machines.
func TestStageAttributionCoverage(t *testing.T) {
	reg := obs.NewRegistry()
	rep, err := Run(busyProgram(t, 100*time.Microsecond),
		Options{Workers: 1, MaxAge: 30, Output: io.Discard, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stages
	if s == nil {
		t.Fatal("metrics run produced no stage attribution")
	}
	if s.Workers != 1 {
		t.Errorf("Stages.Workers = %d, want 1", s.Workers)
	}
	if s.ExecNs <= 0 || s.IdleNs < 0 || s.FetchNs < 0 || s.StoreNs < 0 {
		t.Errorf("stage totals out of range: %+v", s)
	}
	// 150 instances × 100µs of pure spin must show up as exec time.
	if minExec := int64(10 * time.Millisecond); s.ExecNs < minExec {
		t.Errorf("ExecNs = %v, want ≥ %v", time.Duration(s.ExecNs), time.Duration(minExec))
	}
	cov := s.Coverage(rep.Wall)
	if cov < 0.90 || cov > 1.10 {
		t.Errorf("stage coverage = %.3f of wall×workers, want ~1.0 (stages %+v, wall %v)",
			cov, s, rep.Wall)
	}
	// Instance-clock stages exist and are sane (non-negative).
	if s.ReadyWaitNs < 0 || s.QueueWaitNs < 0 {
		t.Errorf("instance-clock stages negative: ready %d queue %d", s.ReadyWaitNs, s.QueueWaitNs)
	}
}

// TestStageMetricsSurface checks the per-kernel stage histograms land in the
// shared registry under their documented names, and the idle stage is global.
func TestStageMetricsSurface(t *testing.T) {
	reg := obs.NewRegistry()
	if _, err := Run(mulSum(t), Options{Workers: 2, MaxAge: 3, Output: io.Discard, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		obs.Label(obs.MStageReadyWaitNs, "kernel", "mul2"),
		obs.Label(obs.MStageQueueWaitNs, "kernel", "mul2"),
		obs.Label(obs.MStageFetchNs, "kernel", "mul2"),
		obs.Label(obs.MStageExecNs, "kernel", "mul2"),
		obs.Label(obs.MStageStoreNs, "kernel", "mul2"),
		obs.MStageIdleNs,
	} {
		h, ok := snap.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing from registry", name)
			continue
		}
		if h.Count <= 0 {
			t.Errorf("histogram %q recorded no samples", name)
		}
	}
	// Stage timers for a kernel sample once per dispatched instance.
	execH := snap.Histograms[obs.Label(obs.MStageExecNs, "kernel", "mul2")]
	inst := snap.Counters[obs.Label(obs.MKernelInstances, "kernel", "mul2")]
	if execH.Count != inst {
		t.Errorf("stage_exec count %d != %d instances", execH.Count, inst)
	}
}

// TestAnalyzerSaturatedHeuristic pins the §VIII-B signature thresholds.
func TestAnalyzerSaturatedHeuristic(t *testing.T) {
	sat := &StageTotals{Workers: 8, FetchNs: 1e6, ExecNs: 2e6, StoreNs: 1e6, IdleNs: 9e6, ReadyWaitNs: 20e6}
	if !sat.AnalyzerSaturated() {
		t.Error("saturated profile not flagged")
	}
	healthy := &StageTotals{Workers: 8, FetchNs: 1e6, ExecNs: 40e6, StoreNs: 1e6, IdleNs: 2e6, ReadyWaitNs: 20e6}
	if healthy.AnalyzerSaturated() {
		t.Error("healthy profile flagged as saturated")
	}
}

// TestDispatchTracingOffAllocFree is the perf gate for the tracing-off path:
// with neither tracer nor registry, one dispatch through exec must not
// allocate — the stage timers have to stay entirely behind the n.stamp gate.
func TestDispatchTracingOffAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	n, tr, is := benchNode(t, true)
	if n.stamp {
		t.Fatal("node without observability has stamping enabled")
	}
	w := newWorkerState(n, 0)
	n.exec(tr, is, w) // warm the frame pool
	allocs := testing.AllocsPerRun(200, func() {
		for j := range w.bufs {
			w.bufs[j] = w.bufs[j][:0]
		}
		n.exec(tr, is, w)
	})
	if allocs != 0 {
		t.Errorf("tracing-off dispatch allocates %.1f objects/op, want 0", allocs)
	}
}
