package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/obs"
)

// instance states.
const (
	instWaiting uint8 = iota
	instQueued
	instRunning
	instDone
)

// instState tracks one kernel instance: its index-variable values, which
// fetches are satisfied (a bitmask) and its lifecycle state. An instance is
// dispatched exactly once, when its mask is full.
type instState struct {
	coords []int
	mask   uint32
	st     uint8
	// readyNs/createdNs are node-clock-relative lifecycle stamps (see
	// Node.nowNs), recorded only when tracing or stage metrics are enabled
	// (Node.stamp); the ready queue's mutex orders the analyzer's writes
	// before the worker's reads. createdNs is the instance's registration
	// time, readyNs the time its last dependency was satisfied — their
	// difference is the analyzer-ready-wait stage.
	readyNs   int64
	createdNs int64
}

// coordKey packs index-variable values into a map key. Extents are limited to
// 16 bits per dimension and four dimensions, which comfortably covers the
// paper's workloads (the largest domain is 1584 macroblocks, rank 1).
func coordKey(coords []int) int64 {
	var k int64
	for _, c := range coords {
		k = k<<16 | int64(c&0xffff)
	}
	return k
}

// varBind records where an index variable gets its range: dimension dim of
// field fs at the age given by age (evaluated per tracker age).
type varBind struct {
	fs  *fieldState
	dim int
	age core.AgeExpr
}

// counterWithBaseline wraps a registry counter together with its value at
// node construction time. A shared registry may carry counts from earlier
// nodes; Own projects only this node's contribution, which is what reports
// and the adaptive-granularity decision need.
type counterWithBaseline struct {
	c    *obs.Counter
	base int64
}

func newBaselined(c *obs.Counter) counterWithBaseline {
	return counterWithBaseline{c: c, base: c.Load()}
}

// Add increments the underlying counter.
func (b counterWithBaseline) Add(d int64) { b.c.Add(d) }

// Own returns the counter's growth since node construction.
func (b counterWithBaseline) Own() int64 { return b.c.Load() - b.base }

// histWithBase wraps a registry histogram together with its sum/count at
// node construction time, the histogram analogue of counterWithBaseline: a
// shared registry may carry observations from earlier nodes, and the stage
// attribution report must project only this node's contribution. The zero
// value (nil histogram) is a disabled handle whose methods are no-ops.
type histWithBase struct {
	h         *obs.Histogram
	baseSum   int64
	baseCount int64
}

func newHistBase(h *obs.Histogram) histWithBase {
	return histWithBase{h: h, baseSum: h.SumNs(), baseCount: h.Count()}
}

// Observe records one duration on the underlying histogram.
func (b histWithBase) Observe(d time.Duration) { b.h.Observe(d) }

// enabled reports whether the handle points at a live histogram.
func (b histWithBase) enabled() bool { return b.h != nil }

// OwnNs returns the summed nanoseconds observed since node construction.
func (b histWithBase) OwnNs() int64 { return b.h.SumNs() - b.baseSum }

// OwnCount returns the observations recorded since node construction.
func (b histWithBase) OwnCount() int64 { return b.h.Count() - b.baseCount }

// idxTerm is one dimension of a precompiled fetch/store index expression:
// coords[v]+off, or the literal off when v < 0. Compiling the terms at
// NewNode time removes the per-instance map[string]int the dispatch path
// used to build for IndexSpec evaluation.
type idxTerm struct {
	v   int // index-variable position in IndexVars, or -1 for a literal
	off int
}

func (t idxTerm) eval(coords []int) int {
	if t.v < 0 {
		return t.off
	}
	return coords[t.v] + t.off
}

// evalTerms evaluates a term list into dst (len(dst) == len(terms)) and
// returns it; dst is caller-owned scratch, so the hot path never allocates.
func evalTerms(dst []int, terms []idxTerm, coords []int) []int {
	for d, t := range terms {
		dst[d] = t.eval(coords)
	}
	return dst
}

// compileSpec precompiles one index spec against the kernel's index-variable
// list. All-kind (slab) specs are rejected by the caller.
func compileSpec(s core.IndexSpec, vars []string) idxTerm {
	if s.Kind == core.IndexVarKind {
		return idxTerm{v: varIndex(vars, s.Var), off: s.Off}
	}
	return idxTerm{v: -1, off: s.Lit}
}

// compileIndex precompiles index specs against the kernel's index-variable
// list. Slab (All) coordinates are rejected by the caller.
func compileIndex(specs []core.IndexSpec, vars []string) []idxTerm {
	terms := make([]idxTerm, len(specs))
	for d, s := range specs {
		terms[d] = compileSpec(s, vars)
	}
	return terms
}

// slabTerm is one dimension of a precompiled slab selector: fixed selects a
// single coordinate (term), free spans the dimension.
type slabTerm struct {
	fixed bool
	term  idxTerm
}

// fetchPlan is the dispatch-time plan of one fetch statement: the resolved
// field state plus precompiled coordinates, so exec neither looks up fields
// by name nor evaluates IndexSpecs through a map.
type fetchPlan struct {
	fe    *core.FetchStmt
	fs    *fieldState
	terms []idxTerm  // element fetches
	slab  []slabTerm // slab fetches (nil otherwise)
	whole bool
	// viewable marks fetches eligible for the zero-copy view path: whole
	// fetches always, slab fetches when the fixed dimensions form a prefix
	// (so the selected rows are one contiguous slab range). Cleared when
	// Options.FetchCopy forces the copying reference path.
	viewable bool
}

// storePlan is the dispatch-time plan of one store statement.
type storePlan struct {
	ss    *core.StoreStmt
	fs    *fieldState
	terms []idxTerm  // element stores
	slab  []slabTerm // slab stores (nil otherwise); terms nil too
}

// kernelState is the per-kernel runtime state: the static plan derived from
// the declaration plus per-age trackers and instrumentation counters.
type kernelState struct {
	decl  *core.KernelDecl
	binds []varBind // one per index variable, in declaration order

	// idx is the kernel's position in Node.order; the sharded analyzer's
	// (kernel, age) -> shard hash is computed from it.
	idx int

	fullMask uint32 // bits of all fetches (the "fully satisfied" mask)

	// needsInstMap is true when the kernel has at least one element fetch:
	// only then does satisfaction ever look an instance up by coordinates.
	// Kernels without element fetches (whole/slab only) skip the per-instance
	// map insert on the sharded analyzer's creation path.
	needsInstMap bool

	// Dispatch plans: precompiled fetch/store coordinates (same order as
	// decl.Fetches/decl.Stores) and a pool of reusable execution frames, so
	// the dispatch hot path is allocation-free.
	fetchPlans []fetchPlan
	storePlans []storePlan
	frames     *sync.Pool // of *execFrame

	ages map[int]*ageTracker

	// gran is the instances-per-dispatch-batch data granularity (§V-A).
	// Atomic because under the sharded analyzer, trackers of the same kernel
	// at different ages live on different shards, and adapt() may race.
	gran atomic.Int32

	// remote marks a kernel executed on another node: no local instances,
	// completions arrive via InjectRemoteDone.
	remote bool

	sourceStopped bool

	// Instrumentation (Table II/III): instance count, per-instance
	// dispatch overhead and kernel-code time, in nanoseconds. The handles
	// live in the node's metrics registry (per-kernel labeled counters), so
	// the Report is a projection of the registry rather than a second set
	// of books; baselines make shared registries project per-node.
	instances  counterWithBaseline
	dispatchNs counterWithBaseline
	kernelNs   counterWithBaseline
	storeOps   counterWithBaseline

	// timedInsts counts the instances whose dispatch/kernel times were
	// actually measured. Without a tracer or metrics registry the dispatch
	// path samples one instance in timeSampleEvery (time.Now is a measurable
	// fraction of a small instance's dispatch cost), so dispatchNs/kernelNs
	// hold sampled sums; the report extrapolates totals by instances/timed
	// and adapt() divides by the timed count. Per-node (not baselined): a
	// shared registry never sees it.
	timedInsts atomic.Int64

	// Stage timers (ISSUE 6): the fixed per-instance latency decomposition
	// behind the attribution report. Enabled (non-nil) only when the node
	// has a caller-supplied registry; the zero value is a no-op handle, so
	// the tracing-off dispatch path pays nothing.
	stageReady histWithBase // instance created -> last dependency satisfied
	stageQueue histWithBase // ready -> a worker picked it up
	stageFetch histWithBase // context construction + fetches
	stageExec  histWithBase // kernel body
	stageStore histWithBase // store application + event emission
}

// ownInstances returns the instances dispatched by this node (registry value
// minus the construction-time baseline); likewise the other own* accessors.
func (ks *kernelState) ownInstances() int64  { return ks.instances.Own() }
func (ks *kernelState) ownDispatchNs() int64 { return ks.dispatchNs.Own() }
func (ks *kernelState) ownKernelNs() int64   { return ks.kernelNs.Own() }
func (ks *kernelState) ownStoreOps() int64   { return ks.storeOps.Own() }

// ageTracker tracks all instances of one kernel at one age: the current index
// domain, instance satisfaction, and completion.
type ageTracker struct {
	ks  *kernelState
	age int

	extents     []int // current range per index variable
	bindsDone   int   // range-defining (field, age) pairs that are complete
	domainFinal bool

	inst    map[int64]*instState
	total   int
	done    int
	pending []*instState // ready instances not yet flushed into a batch

	// all lists every instance when the sharded analyzer skips the inst map
	// (kernels without element fetches never look instances up by coordinate);
	// it exists only so completed trackers can recycle their instances.
	all []*instState

	completed bool
}

// fieldState is the per-field runtime state: the backing store plus the
// static producer/consumer edges and per-age completeness accounting.
type fieldState struct {
	decl *core.FieldDecl
	f    *field.Field

	producers []prodEdge
	consumers []consEdge
	// rangeOf lists the kernels (and which of their index variables) whose
	// domain is defined by this field's extents.
	rangeOf []rangeEdge

	ages map[int]*fieldAgeState

	// Store-event routing tables for the sharded analyzer, precompiled at
	// NewNode. A store to generation g only concerns shards owning a tracker
	// whose element-fetch satisfaction or index-range growth can depend on
	// it: elemRoutes lists the age-variable element-fetch consumers (tracker
	// age g-off), growRoutes the age-variable range bindings (relevant only
	// when the store grew the field). Absolute-age edges touch every tracker
	// age, so they force a broadcast. An event whose route set is empty is
	// dropped at the worker — whole/slab fetches are satisfied by the
	// completeness broadcast, not by store events.
	elemRoutes    []shardRoute
	growRoutes    []shardRoute
	elemBroadcast bool
	growBroadcast bool

	// agedConsumers counts consumer edges with age-variable fetches; used
	// by garbage collection (an age is collectable when that many consumer
	// kernel-ages have completed). Fields with absolute-age consumers are
	// never collected (every future age may read them).
	agedConsumers int
	absConsumers  int
}

type prodEdge struct {
	ks    *kernelState
	store *core.StoreStmt
}

type consEdge struct {
	ks       *kernelState
	fetch    *core.FetchStmt
	fetchBit uint32
	// terms are the precompiled element-fetch coordinates (nil for whole or
	// slab fetches, which are satisfied by completeness rather than stores).
	terms []idxTerm
}

type rangeEdge struct {
	ks     *kernelState
	varIdx int
	dim    int
	age    core.AgeExpr
}

// shardRoute is one precompiled store-event destination: the consuming
// kernel's tracker at age (store generation - off).
type shardRoute struct {
	ks  *kernelState
	off int
}

// fieldAgeState tracks completeness of one field generation.
type fieldAgeState struct {
	expected      int // producer kernel-ages that must complete
	producersDone int
	complete      bool
	consumersDone int
	collected     bool
}

func (t *ageTracker) String() string {
	return fmt.Sprintf("%s(age=%d, %d/%d done, domainFinal=%v)", t.ks.decl.Name, t.age, t.done, t.total, t.domainFinal)
}

// boxCells is the cell count of box(ext): the product of the extents, zero
// for a nil box (nothing created yet).
func boxCells(ext []int) int {
	if len(ext) == 0 {
		return 0
	}
	p := 1
	for _, e := range ext {
		p *= e
	}
	return p
}

// newCells visits every coordinate in box(to) that is not in box(from). The
// boxes share an origin; from must be component-wise <= to. Rank 0 (a single
// instance with no index variables) is treated as one cell that exists once
// the tracker is created, handled by the caller.
func newCells(from, to []int, visit func([]int)) {
	rank := len(to)
	coords := make([]int, rank)
	var rec func(d, firstGrown int)
	rec = func(d, firstGrown int) {
		if d == rank {
			if firstGrown >= 0 { // cells inside the old box are not new
				visit(coords)
			}
			return
		}
		// Decomposition: a cell is new iff there is a first dimension d
		// where its coordinate is >= from[d]; before d coordinates are
		// < from, after d they range over the full new extent.
		if firstGrown >= 0 {
			for c := 0; c < to[d]; c++ {
				coords[d] = c
				rec(d+1, firstGrown)
			}
			return
		}
		// Not yet past a grown dimension: either stay below from[d] and
		// recurse, or enter the grown band [from[d], to[d]).
		for c := 0; c < from[d]; c++ {
			coords[d] = c
			rec(d+1, -1)
		}
		for c := from[d]; c < to[d]; c++ {
			coords[d] = c
			rec(d+1, d)
		}
	}
	if rank == 0 {
		return
	}
	rec(0, -1)
}
