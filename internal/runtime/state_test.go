package runtime

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Property: newCells visits exactly box(to) \ box(from), each cell once.
func TestQuickNewCells(t *testing.T) {
	f := func(dims []uint8, growth []uint8) bool {
		rank := len(dims)
		if rank == 0 || rank > 3 {
			return true
		}
		from := make([]int, rank)
		to := make([]int, rank)
		for i := range dims {
			from[i] = int(dims[i] % 5)
			g := 0
			if i < len(growth) {
				g = int(growth[i] % 4)
			}
			to[i] = from[i] + g
		}
		seen := map[string]bool{}
		newCells(from, to, func(c []int) {
			k := fmt.Sprint(c)
			if seen[k] {
				t.Errorf("duplicate cell %v for from=%v to=%v", c, from, to)
			}
			seen[k] = true
		})
		// Count expected: |to| - |from|.
		vol := func(e []int) int {
			v := 1
			for _, x := range e {
				v *= x
			}
			return v
		}
		if len(seen) != vol(to)-vol(from) {
			t.Errorf("from=%v to=%v visited %d, want %d", from, to, len(seen), vol(to)-vol(from))
			return false
		}
		// Every visited cell is inside to-box and outside from-box.
		for k := range seen {
			var c []int
			fmt.Sscan(k) // cells checked structurally below instead
			_ = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewCellsRankZero(t *testing.T) {
	called := false
	newCells(nil, nil, func([]int) { called = true })
	if called {
		t.Error("rank-0 newCells should visit nothing")
	}
}

func TestNewCellsInsideOutside(t *testing.T) {
	from := []int{2, 3}
	to := []int{4, 5}
	newCells(from, to, func(c []int) {
		inOld := c[0] < from[0] && c[1] < from[1]
		inNew := c[0] < to[0] && c[1] < to[1]
		if inOld || !inNew {
			t.Errorf("cell %v outside the difference region", c)
		}
	})
}

func TestCoordKey(t *testing.T) {
	cases := map[string][2][]int{
		"distinct-order": {{1, 0}, {0, 1}},
		"distinct-rank1": {{7}, {8}},
	}
	for name, pair := range cases {
		if coordKey(pair[0]) == coordKey(pair[1]) {
			t.Errorf("%s: keys collide", name)
		}
	}
	if coordKey(nil) != 0 {
		t.Error("empty coords should map to 0")
	}
}

func TestReadyQueueAgeOrder(t *testing.T) {
	q := newReadyQueue()
	mk := func(age int) *batch {
		return &batch{tracker: &ageTracker{age: age}, insts: []*instState{{}}}
	}
	q.Push(mk(3))
	q.Push(mk(1))
	q.Push(mk(2))
	q.Push(mk(1))
	var ages []int
	for i := 0; i < 4; i++ {
		b, ok := q.Pop(0)
		if !ok {
			t.Fatal("queue closed early")
		}
		ages = append(ages, b.tracker.age)
	}
	want := []int{1, 1, 2, 3}
	for i := range want {
		if ages[i] != want[i] {
			t.Fatalf("pop order %v, want %v", ages, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue len = %d", q.Len())
	}
	q.Close()
	if _, ok := q.Pop(0); ok {
		t.Error("pop after close+drain should report closed")
	}
	q.Push(mk(1)) // push after close is a no-op
	if q.Len() != 0 {
		t.Error("push after close should be ignored")
	}
}

func TestReadyQueueBlocksUntilPush(t *testing.T) {
	q := newReadyQueue()
	done := make(chan int, 1)
	go func() {
		b, ok := q.Pop(0)
		if !ok {
			done <- -1
			return
		}
		done <- b.tracker.age
	}()
	q.Push(&batch{tracker: &ageTracker{age: 9}, insts: []*instState{{}}})
	if got := <-done; got != 9 {
		t.Fatalf("blocked pop got %d", got)
	}
}
