package runtime

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
)

// viewBenchNode builds a one-kernel node whose whole-fetch input generation
// is pre-stored and complete, so exec can be driven directly through the
// zero-copy view path.
func viewBenchNode(t testing.TB, fetchCopy bool) (*Node, *ageTracker, *instState) {
	t.Helper()
	pb := core.NewBuilder("viewbench")
	pb.Field("in", field.Float64, 1, true)
	pb.Kernel("consume").
		Local("v", field.Float64, 1).
		FetchAll("v", "in", core.AgeAt(0)).
		Body(func(c *core.Ctx) error {
			_ = c.Array("v")
			return nil
		})
	prog, err := pb.Build()
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(prog, Options{Workers: 1, FetchCopy: fetchCopy})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i)
	}
	if _, err := n.fields["in"].f.StoreAll(0, field.ArrayFromFloat64(vals)); err != nil {
		t.Fatal(err)
	}
	n.fields["in"].f.MarkComplete(0)
	ks := n.kernels["consume"]
	return n, &ageTracker{ks: ks, age: 0}, &instState{}
}

// TestViewDispatchAllocFree pins the whole-generation view-fetch dispatch at
// zero allocations per op: aliasing the slab replaces the per-instance copy
// entirely.
func TestViewDispatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	n, tr, is := viewBenchNode(t, false)
	if !n.kernels["consume"].fetchPlans[0].viewable {
		t.Fatal("whole fetch not planned as viewable")
	}
	w := newWorkerState(n, 0)
	n.exec(tr, is, w) // warm the frame pool
	allocs := testing.AllocsPerRun(200, func() {
		for j := range w.bufs {
			w.bufs[j] = w.bufs[j][:0]
		}
		n.exec(tr, is, w)
	})
	if allocs != 0 {
		t.Errorf("view-fetch dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFetchCopyDisablesViews: the A/B reference option must plan every fetch
// as non-viewable.
func TestFetchCopyDisablesViews(t *testing.T) {
	n, _, _ := viewBenchNode(t, true)
	if n.kernels["consume"].fetchPlans[0].viewable {
		t.Fatal("FetchCopy left the fetch viewable")
	}
}

// TestFetchCopyViewEquivalence runs the aging mul/sum cycle with the copying
// reference path and with zero-copy views, and requires every generation of
// both fields bit-identical — the serial-vs-view analogue of the
// sharded-analyzer equivalence stress (run under -race in CI).
func TestFetchCopyViewEquivalence(t *testing.T) {
	const maxAge = 40
	run := func(fetchCopy bool) *Node {
		n, err := NewNode(mulSum(t), Options{
			Workers: 4, MaxAge: maxAge, Output: io.Discard, FetchCopy: fetchCopy,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Stalled) != 0 {
			t.Fatalf("fetchCopy=%v stalled: %v", fetchCopy, rep.Stalled)
		}
		return n
	}
	ref := run(true)
	view := run(false)
	for _, f := range []string{"m_data", "p_data"} {
		for age := 0; age <= maxAge; age++ {
			want, err := ref.Snapshot(f, age)
			if err != nil {
				t.Fatal(err)
			}
			got, err := view.Snapshot(f, age)
			if err != nil {
				t.Fatal(err)
			}
			if want.String() != got.String() {
				t.Fatalf("%s(%d) diverged:\ncopy: %s\nview: %s", f, age, want, got)
			}
		}
	}
}
