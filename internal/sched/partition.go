package sched

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// Assignment maps each kernel (by index into the final graph's node list) to
// an execution-node index.
type Assignment []int

// Method selects the partitioning algorithm.
type Method uint8

// Partitioning methods. Greedy is a capacity-proportional first fit;
// KL refines an initial partition with Kernighan–Lin-style moves; Tabu runs
// a tabu search over single-kernel moves (Glover [14]).
const (
	Greedy Method = iota
	KL
	Tabu
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Greedy:
		return "greedy"
	case KL:
		return "kl"
	case Tabu:
		return "tabu"
	}
	return fmt.Sprintf("method(%d)", uint8(m))
}

// Cost evaluates an assignment: Cut is the total weight of edges crossing
// node boundaries divided by link bandwidth; Imbalance is the ratio of the
// most-loaded node's normalized load to the average. Total is the scalar
// objective the optimizers minimize.
type Cost struct {
	Cut       float64
	Imbalance float64
	Total     float64
}

// imbalancePenalty scales how strongly load imbalance is punished relative
// to cut weight in the scalar objective. The penalty term is multiplied by
// the graph's total normalized compute so that it stays commensurate with
// cut weights whether the graph carries unit weights or nanosecond-scale
// instrumentation data.
const imbalancePenalty = 10

// Evaluate computes the cost of an assignment.
func Evaluate(g *graph.Final, topo Topology, a Assignment) Cost {
	idx := nodeIndex(g)
	var cut float64
	for _, e := range g.Edges {
		if a[idx[e.From]] != a[idx[e.To]] {
			cut += e.Weight
		}
	}
	cut /= topo.bandwidth()

	loads := make([]float64, len(topo.Nodes))
	var totalWeight float64
	for i, n := range g.Nodes {
		loads[a[i]] += n.Weight
		totalWeight += n.Weight
	}
	var maxLoad, total float64
	for i, l := range loads {
		norm := l / topo.Nodes[i].Capacity()
		total += norm
		if norm > maxLoad {
			maxLoad = norm
		}
	}
	avg := total / float64(len(topo.Nodes))
	imb := 1.0
	if avg > 0 {
		imb = maxLoad / avg
	}
	scale := totalWeight / topo.TotalCapacity()
	return Cost{Cut: cut, Imbalance: imb, Total: cut + imbalancePenalty*(imb-1)*scale}
}

func nodeIndex(g *graph.Final) map[string]int {
	idx := make(map[string]int, len(g.Nodes))
	for i, n := range g.Nodes {
		idx[n.Name] = i
	}
	return idx
}

// Partition assigns the final graph's kernels to the topology's execution
// nodes using the chosen method and returns the assignment with its cost.
func Partition(g *graph.Final, topo Topology, m Method) (Assignment, Cost, error) {
	if len(topo.Nodes) == 0 {
		return nil, Cost{}, fmt.Errorf("sched: empty topology")
	}
	if len(g.Nodes) == 0 {
		return nil, Cost{}, fmt.Errorf("sched: empty graph")
	}
	a := greedy(g, topo)
	switch m {
	case Greedy:
	case KL:
		a = klRefine(g, topo, a)
	case Tabu:
		a = tabuSearch(g, topo, a)
	default:
		return nil, Cost{}, fmt.Errorf("sched: unknown method %v", m)
	}
	return a, Evaluate(g, topo, a), nil
}

// greedy assigns kernels in descending weight order to the node with the
// lowest normalized load, breaking ties toward the node holding the most
// strongly connected already-placed neighbors.
func greedy(g *graph.Final, topo Topology) Assignment {
	idx := nodeIndex(g)
	order := make([]int, len(g.Nodes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		return g.Nodes[order[x]].Weight > g.Nodes[order[y]].Weight
	})
	a := make(Assignment, len(g.Nodes))
	for i := range a {
		a[i] = -1
	}
	loads := make([]float64, len(topo.Nodes))

	affinity := func(k, node int) float64 {
		var s float64
		for _, e := range g.Edges {
			f, t := idx[e.From], idx[e.To]
			if f == k && a[t] == node {
				s += e.Weight
			}
			if t == k && a[f] == node {
				s += e.Weight
			}
		}
		return s
	}

	for _, k := range order {
		best, bestScore := 0, math.Inf(-1)
		for n := range topo.Nodes {
			// Prefer low load; affinity breaks near-ties so pipelines
			// stay together when balance permits.
			load := (loads[n] + g.Nodes[k].Weight) / topo.Nodes[n].Capacity()
			score := -load + affinity(k, n)/(1+load)
			if score > bestScore {
				best, bestScore = n, score
			}
		}
		a[k] = best
		loads[best] += g.Nodes[k].Weight
	}
	return a
}

// klRefine performs Kernighan–Lin-style refinement generalized to k
// partitions: repeated passes over all kernels, moving each to the node that
// most reduces total cost, until a pass makes no improvement.
func klRefine(g *graph.Final, topo Topology, a Assignment) Assignment {
	a = append(Assignment(nil), a...)
	cur := Evaluate(g, topo, a).Total
	for pass := 0; pass < 32; pass++ {
		improved := false
		for k := range g.Nodes {
			orig := a[k]
			bestNode, bestCost := orig, cur
			for n := range topo.Nodes {
				if n == orig {
					continue
				}
				a[k] = n
				if c := Evaluate(g, topo, a).Total; c < bestCost-1e-12 {
					bestNode, bestCost = n, c
				}
			}
			a[k] = bestNode
			if bestNode != orig {
				cur = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return a
}

// tabuSearch explores single-kernel moves with a tabu list of recently moved
// kernels, accepting the best non-tabu move each step even when it worsens
// the objective (escaping local minima), and keeps the best assignment seen.
func tabuSearch(g *graph.Final, topo Topology, a Assignment) Assignment {
	a = append(Assignment(nil), a...)
	best := append(Assignment(nil), a...)
	bestCost := Evaluate(g, topo, a).Total
	tabu := make([]int, len(g.Nodes)) // iteration until which kernel k is tabu
	tenure := 4 + len(g.Nodes)/4
	steps := 50 + 10*len(g.Nodes)
	for it := 0; it < steps; it++ {
		moveK, moveN := -1, -1
		moveCost := math.Inf(1)
		for k := range g.Nodes {
			orig := a[k]
			for n := range topo.Nodes {
				if n == orig {
					continue
				}
				a[k] = n
				c := Evaluate(g, topo, a).Total
				a[k] = orig
				// Aspiration: tabu moves are allowed when they beat the
				// global best.
				if tabu[k] > it && c >= bestCost {
					continue
				}
				if c < moveCost {
					moveK, moveN, moveCost = k, n, c
				}
			}
		}
		if moveK < 0 {
			break
		}
		a[moveK] = moveN
		tabu[moveK] = it + tenure
		if moveCost < bestCost {
			bestCost = moveCost
			copy(best, a)
		}
	}
	return best
}

// ApplyInstrumentation weights the final graph with measured data: node
// weights become total kernel time, edge weights the producing kernel's
// instance count (a proxy for message volume), enabling the repartitioning
// loop of §IV.
func ApplyInstrumentation(g *graph.Final, rep *runtime.Report) {
	nw := make(map[string]float64, len(rep.Kernels))
	inst := make(map[string]float64, len(rep.Kernels))
	for _, k := range rep.Kernels {
		nw[k.Name] = float64(k.KernelTotal) + 1
		inst[k.Name] = float64(k.Instances) + 1
	}
	g.SetNodeWeights(nw)
	ew := make(map[string]float64, len(g.Edges))
	for _, e := range g.Edges {
		ew[e.Key()] = inst[e.From]
	}
	g.SetEdgeWeights(ew)
}

// Repartition evaluates whether a new assignment computed from measured
// weights improves on the current one; it returns the better assignment and
// whether it changed — the master's feedback loop.
func Repartition(g *graph.Final, topo Topology, current Assignment, rep *runtime.Report, m Method) (Assignment, bool, error) {
	ApplyInstrumentation(g, rep)
	next, nextCost, err := Partition(g, topo, m)
	if err != nil {
		return current, false, err
	}
	if current != nil {
		curCost := Evaluate(g, topo, current)
		if curCost.Total <= nextCost.Total {
			return current, false, nil
		}
	}
	same := current != nil && len(current) == len(next)
	if same {
		for i := range next {
			if next[i] != current[i] {
				same = false
				break
			}
		}
	}
	return next, !same, nil
}
