package sched

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/runtime"
)

// chainGraph builds a weighted pipeline A→B→C→D with uniform node weights.
func chainGraph() *graph.Final {
	g := &graph.Final{}
	names := []string{"A", "B", "C", "D"}
	for _, n := range names {
		g.Nodes = append(g.Nodes, graph.Node{Name: n, Weight: 1})
	}
	for i := 0; i+1 < len(names); i++ {
		g.Edges = append(g.Edges, graph.Edge{From: names[i], To: names[i+1], Field: "f", Weight: 1})
	}
	return g
}

// twoClusters builds two internally heavy cliques connected by one light
// edge — the canonical partitioning test: the optimal 2-way cut crosses the
// light edge only.
func twoClusters() *graph.Final {
	g := &graph.Final{}
	left := []string{"a1", "a2", "a3"}
	right := []string{"b1", "b2", "b3"}
	for _, n := range append(append([]string{}, left...), right...) {
		g.Nodes = append(g.Nodes, graph.Node{Name: n, Weight: 1})
	}
	heavy := func(ns []string) {
		for i := range ns {
			for j := i + 1; j < len(ns); j++ {
				g.Edges = append(g.Edges, graph.Edge{From: ns[i], To: ns[j], Field: "f", Weight: 10})
			}
		}
	}
	heavy(left)
	heavy(right)
	g.Edges = append(g.Edges, graph.Edge{From: "a1", To: "b1", Field: "bridge", Weight: 1})
	return g
}

func TestTopology(t *testing.T) {
	topo := NewTopology(3, 4)
	if len(topo.Nodes) != 3 || topo.Nodes[0].Capacity() != 4 {
		t.Fatal("homogeneous topology")
	}
	if topo.TotalCapacity() != 12 {
		t.Errorf("capacity %v", topo.TotalCapacity())
	}
	het := NewTopology(1, 2).Add("gpu", 8, 4)
	if het.Nodes[1].Capacity() != 32 {
		t.Errorf("heterogeneous capacity %v", het.Nodes[1].Capacity())
	}
	if (ExecNode{}).Capacity() != 1 {
		t.Error("zero node should default to capacity 1")
	}
}

func TestPartitionSingleNodeHasNoCut(t *testing.T) {
	g := chainGraph()
	for _, m := range []Method{Greedy, KL, Tabu} {
		a, c, err := Partition(g, NewTopology(1, 4), m)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range a {
			if n != 0 {
				t.Fatalf("%v: assignment %v", m, a)
			}
		}
		if c.Cut != 0 {
			t.Errorf("%v: cut %v on one node", m, c.Cut)
		}
	}
}

func TestPartitionFindsLightBridge(t *testing.T) {
	g := twoClusters()
	topo := NewTopology(2, 4)
	for _, m := range []Method{KL, Tabu} {
		a, c, err := Partition(g, topo, m)
		if err != nil {
			t.Fatal(err)
		}
		if c.Cut != 1 {
			t.Errorf("%v: cut %v, want 1 (only the bridge edge)", m, c.Cut)
		}
		// Each clique stays together.
		if a[0] != a[1] || a[1] != a[2] {
			t.Errorf("%v: left clique split: %v", m, a)
		}
		if a[3] != a[4] || a[4] != a[5] {
			t.Errorf("%v: right clique split: %v", m, a)
		}
		if a[0] == a[3] {
			t.Errorf("%v: everything on one node despite balance penalty", m)
		}
	}
}

func TestRefinementNotWorseThanGreedy(t *testing.T) {
	g := twoClusters()
	topo := NewTopology(3, 2)
	_, gc, err := Partition(g, topo, Greedy)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{KL, Tabu} {
		_, c, err := Partition(g, topo, m)
		if err != nil {
			t.Fatal(err)
		}
		if c.Total > gc.Total+1e-9 {
			t.Errorf("%v cost %v worse than greedy %v", m, c.Total, gc.Total)
		}
	}
}

func TestEvaluateBalance(t *testing.T) {
	g := chainGraph()
	topo := NewTopology(2, 4)
	balanced := Assignment{0, 0, 1, 1}
	skewed := Assignment{0, 0, 0, 0}
	cb := Evaluate(g, topo, balanced)
	cs := Evaluate(g, topo, skewed)
	if cb.Imbalance != 1 {
		t.Errorf("balanced imbalance = %v", cb.Imbalance)
	}
	if cs.Imbalance <= cb.Imbalance {
		t.Error("skewed assignment should be more imbalanced")
	}
	if cs.Total <= cs.Cut {
		t.Error("imbalance must contribute to total cost")
	}
}

func TestHeterogeneousCapacityAttractsLoad(t *testing.T) {
	// One fast node and one slow node: the heavy kernels should land on
	// the fast one.
	g := &graph.Final{}
	for _, n := range []string{"k1", "k2", "k3", "k4"} {
		g.Nodes = append(g.Nodes, graph.Node{Name: n, Weight: 10})
	}
	topo := Topology{Nodes: []ExecNode{
		{ID: "slow", Cores: 1, Speed: 1},
		{ID: "fast", Cores: 8, Speed: 2},
	}, Bandwidth: 1}
	a, _, err := Partition(g, topo, KL)
	if err != nil {
		t.Fatal(err)
	}
	fast := 0
	for _, n := range a {
		if n == 1 {
			fast++
		}
	}
	if fast < 3 {
		t.Errorf("only %d of 4 kernels on the 16x-capacity node (%v)", fast, a)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, _, err := Partition(chainGraph(), Topology{}, Greedy); err == nil {
		t.Error("empty topology should error")
	}
	if _, _, err := Partition(&graph.Final{}, NewTopology(1, 1), Greedy); err == nil {
		t.Error("empty graph should error")
	}
	if _, _, err := Partition(chainGraph(), NewTopology(1, 1), Method(99)); err == nil {
		t.Error("unknown method should error")
	}
	if Method(99).String() == "" || Greedy.String() != "greedy" {
		t.Error("method names")
	}
}

func TestApplyInstrumentationAndRepartition(t *testing.T) {
	g := chainGraph()
	rep := &runtime.Report{Kernels: []runtime.KernelStats{
		{Name: "A", Instances: 1, KernelTotal: time.Millisecond},
		{Name: "B", Instances: 1000, KernelTotal: time.Second},
		{Name: "C", Instances: 1000, KernelTotal: time.Second},
		{Name: "D", Instances: 1, KernelTotal: time.Millisecond},
	}}
	ApplyInstrumentation(g, rep)
	if g.Node("B").Weight <= g.Node("A").Weight {
		t.Error("instrumented weights not applied")
	}

	topo := NewTopology(2, 4)
	// Start from a deliberately bad assignment.
	bad := Assignment{0, 0, 0, 0}
	next, changed, err := Repartition(g, topo, bad, rep, KL)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("repartition should improve on a one-sided assignment")
	}
	if Evaluate(g, topo, next).Total >= Evaluate(g, topo, bad).Total {
		t.Error("repartition did not reduce cost")
	}
	// The heavy middle kernels end up split across nodes for balance.
	if next[1] == next[2] {
		t.Logf("note: B and C colocated (%v); acceptable if cost is lower", next)
	}

	// A second repartition from the improved assignment is a no-op.
	again, changed, err := Repartition(g, topo, next, rep, KL)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Errorf("stable repartition flapped: %v -> %v", next, again)
	}
}
