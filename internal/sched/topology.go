// Package sched implements P2G's high-level scheduler (HLS): the global
// topology of execution nodes, partitioning of the final implicit static
// dependency graph onto that topology (the paper cites graph partitioning
// [17] and tabu search [14] as candidate algorithms — both are implemented
// here, plus a greedy baseline), and instrumentation-driven repartitioning.
package sched

import "fmt"

// ExecNode describes one execution node in the global topology: its core
// count and a relative speed factor (1.0 is the reference machine; the
// paper's heterogeneous future-work targets — GPUs, SCC — are modeled as
// speed factors).
type ExecNode struct {
	ID    string
	Cores int
	Speed float64
}

// Capacity is the node's effective compute capacity.
func (n ExecNode) Capacity() float64 {
	s := n.Speed
	if s <= 0 {
		s = 1
	}
	c := n.Cores
	if c <= 0 {
		c = 1
	}
	return float64(c) * s
}

// Topology is the master node's view of available resources. The paper's
// figure 1: execution nodes report their local topology; the master combines
// them. Bandwidth is the relative inter-node link capacity used to weigh cut
// edges (intra-node communication is free).
type Topology struct {
	Nodes     []ExecNode
	Bandwidth float64
}

// NewTopology builds a homogeneous topology of n nodes with the given cores
// per node.
func NewTopology(n, coresPer int) Topology {
	t := Topology{Bandwidth: 1}
	for i := 0; i < n; i++ {
		t.Nodes = append(t.Nodes, ExecNode{ID: fmt.Sprintf("node%d", i), Cores: coresPer, Speed: 1})
	}
	return t
}

// Add appends a node and returns the updated topology (for fluent setup of
// heterogeneous configurations).
func (t Topology) Add(id string, cores int, speed float64) Topology {
	t.Nodes = append(t.Nodes, ExecNode{ID: id, Cores: cores, Speed: speed})
	return t
}

// TotalCapacity sums node capacities.
func (t Topology) TotalCapacity() float64 {
	var s float64
	for _, n := range t.Nodes {
		s += n.Capacity()
	}
	return s
}

func (t Topology) bandwidth() float64 {
	if t.Bandwidth <= 0 {
		return 1
	}
	return t.Bandwidth
}
