// Package sift implements a simplified SIFT front-end — Gaussian scale
// space, difference-of-Gaussians and scale-space extrema detection — the
// second pipeline the paper's §III motivates ("prominent examples are the
// computation-heavy MPEG-4 AVC encoding and SIFT pipelines. Both are also
// examples of algorithms whose subsequent steps provide data decomposition
// opportunities at different granularities and along different dimensions of
// input data").
//
// The decomposition story is the point: the horizontal blur parallelizes per
// row, the vertical blur per column, DoG per row again, and extrema
// detection per interior row with neighbour access across rows and scales.
// The P2G version (package workloads) maps each stage to kernels with
// exactly those index domains; this package holds the shared math and the
// sequential reference.
package sift

import "math"

// Image is a grayscale image as rows of float64 samples.
type Image [][]float64

// NewImage allocates a h x w image.
func NewImage(w, h int) Image {
	img := make(Image, h)
	for y := range img {
		img[y] = make([]float64, w)
	}
	return img
}

// FromLuma converts a byte luma plane to an Image.
func FromLuma(y []byte, w, h int) Image {
	img := NewImage(w, h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			img[r][c] = float64(y[r*w+c])
		}
	}
	return img
}

// Kernel returns a normalized 1-D Gaussian kernel for the given sigma; the
// radius is ceil(3*sigma).
func Kernel(sigma float64) []float64 {
	if sigma <= 0 {
		panic("sift: sigma must be positive")
	}
	radius := int(math.Ceil(3 * sigma))
	k := make([]float64, 2*radius+1)
	var sum float64
	for i := range k {
		d := float64(i - radius)
		k[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k
}

// BlurRow convolves one row with the kernel, clamping at the borders
// (edge-replication). This is the work of one horizontal-blur kernel
// instance.
func BlurRow(row []float64, k []float64) []float64 {
	w := len(row)
	radius := len(k) / 2
	out := make([]float64, w)
	for x := 0; x < w; x++ {
		var s float64
		for i, kv := range k {
			sx := x + i - radius
			if sx < 0 {
				sx = 0
			}
			if sx >= w {
				sx = w - 1
			}
			s += row[sx] * kv
		}
		out[x] = s
	}
	return out
}

// Transpose flips rows and columns, letting the vertical pass reuse BlurRow
// on columns — and letting the P2G version switch decomposition dimension
// between stages.
func Transpose(img Image) Image {
	if len(img) == 0 {
		return img
	}
	h, w := len(img), len(img[0])
	out := NewImage(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out[x][y] = img[y][x]
		}
	}
	return out
}

// Blur applies a separable Gaussian blur (rows, transpose, rows, transpose).
func Blur(img Image, sigma float64) Image {
	k := Kernel(sigma)
	hpass := make(Image, len(img))
	for y := range img {
		hpass[y] = BlurRow(img[y], k)
	}
	tr := Transpose(hpass)
	for y := range tr {
		tr[y] = BlurRow(tr[y], k)
	}
	return Transpose(tr)
}

// DoGRow subtracts two equally long rows (fine minus coarse) — one
// difference-of-Gaussians kernel instance.
func DoGRow(fine, coarse []float64) []float64 {
	out := make([]float64, len(fine))
	for i := range out {
		out[i] = fine[i] - coarse[i]
	}
	return out
}

// Keypoint is a detected scale-space extremum.
type Keypoint struct {
	X, Y  int
	Level int // DoG level the extremum was found in
	Value float64
}

// ExtremaRow scans interior row y of DoG level lvl for local extrema: a
// sample qualifies if |v| exceeds threshold and v is strictly the
// maximum or minimum of its 3x3 neighbourhood in its own level and the 3x3
// patch in the other level. rows holds the three consecutive rows (y-1, y,
// y+1) of this level; other holds the same three rows of the other level.
func ExtremaRow(y, lvl int, rows, other [3][]float64, threshold float64) []Keypoint {
	var keys []Keypoint
	w := len(rows[1])
	for x := 1; x < w-1; x++ {
		v := rows[1][x]
		if math.Abs(v) < threshold {
			continue
		}
		isMax, isMin := true, true
		check := func(nv float64) {
			if nv >= v {
				isMax = false
			}
			if nv <= v {
				isMin = false
			}
		}
		for dy := 0; dy < 3; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dy != 1 || dx != 0 {
					check(rows[dy][x+dx])
				}
				check(other[dy][x+dx])
			}
		}
		if isMax || isMin {
			keys = append(keys, Keypoint{X: x, Y: y, Level: lvl, Value: v})
		}
	}
	return keys
}

// Result is the output of the SIFT front-end.
type Result struct {
	Keypoints []Keypoint
}

// Sigmas are the three scale-space levels used by both the sequential and
// the P2G pipeline.
var Sigmas = [3]float64{1.0, 1.6, 2.56}

// DefaultThreshold is the extremum magnitude cutoff.
const DefaultThreshold = 2.0

// Sequential runs the whole front-end single-threaded: 3 blurs, 2 DoG
// levels, extrema over interior rows. The P2G version must match this
// exactly (identical float operations in identical per-row order).
func Sequential(img Image, threshold float64) *Result {
	var blurs [3]Image
	for i, sigma := range Sigmas {
		blurs[i] = Blur(img, sigma)
	}
	dogs := [2]Image{}
	for l := 0; l < 2; l++ {
		dogs[l] = make(Image, len(img))
		for y := range img {
			dogs[l][y] = DoGRow(blurs[l][y], blurs[l+1][y])
		}
	}
	res := &Result{}
	h := len(img)
	for l := 0; l < 2; l++ {
		for y := 1; y < h-1; y++ {
			rows := [3][]float64{dogs[l][y-1], dogs[l][y], dogs[l][y+1]}
			other := [3][]float64{dogs[1-l][y-1], dogs[1-l][y], dogs[1-l][y+1]}
			res.Keypoints = append(res.Keypoints, ExtremaRow(y, l, rows, other, threshold)...)
		}
	}
	return res
}
