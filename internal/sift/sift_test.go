package sift

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKernelProperties(t *testing.T) {
	for _, sigma := range []float64{0.5, 1.0, 1.6, 3.2} {
		k := Kernel(sigma)
		if len(k)%2 != 1 {
			t.Fatalf("sigma %v: kernel length %d not odd", sigma, len(k))
		}
		var sum float64
		for i, v := range k {
			sum += v
			if v != k[len(k)-1-i] {
				t.Fatalf("sigma %v: kernel not symmetric", sigma)
			}
			if v <= 0 {
				t.Fatalf("sigma %v: non-positive weight", sigma)
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("sigma %v: kernel sums to %v", sigma, sum)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive sigma should panic")
		}
	}()
	Kernel(0)
}

// Property: blurring a constant row is the identity (up to rounding).
func TestQuickBlurConstant(t *testing.T) {
	f := func(v uint8, n uint8) bool {
		w := int(n%32) + 8
		row := make([]float64, w)
		for i := range row {
			row[i] = float64(v)
		}
		out := BlurRow(row, Kernel(1.6))
		for _, o := range out {
			if math.Abs(o-float64(v)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: blur preserves the mean of the row better than it preserves the
// extremes (it is a smoothing average with edge replication; interior mass
// is conserved up to border effects, and max never grows).
func TestQuickBlurBounds(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) < 8 {
			return true
		}
		row := make([]float64, len(vals))
		hi := 0.0
		for i, v := range vals {
			row[i] = float64(v)
			if row[i] > hi {
				hi = row[i]
			}
		}
		out := BlurRow(row, Kernel(1.0))
		for _, o := range out {
			if o > hi+1e-9 || o < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	img := NewImage(5, 3)
	v := 0.0
	for y := range img {
		for x := range img[y] {
			img[y][x] = v
			v++
		}
	}
	tt := Transpose(Transpose(img))
	for y := range img {
		for x := range img[y] {
			if tt[y][x] != img[y][x] {
				t.Fatal("transpose twice is not the identity")
			}
		}
	}
	tr := Transpose(img)
	if len(tr) != 5 || len(tr[0]) != 3 {
		t.Fatalf("transposed dims %dx%d", len(tr), len(tr[0]))
	}
	if tr[2][1] != img[1][2] {
		t.Error("transpose coordinates")
	}
}

func TestSequentialFindsPlantedExtremum(t *testing.T) {
	// A single bright dot produces a strong DoG extremum at its location.
	img := NewImage(32, 32)
	img[16][16] = 255
	res := Sequential(img, DefaultThreshold)
	if len(res.Keypoints) == 0 {
		t.Fatal("no keypoints for an impulse image")
	}
	found := false
	for _, k := range res.Keypoints {
		if k.X == 16 && k.Y == 16 {
			found = true
		}
	}
	if !found {
		t.Errorf("impulse location not among keypoints: %v", res.Keypoints)
	}
	// A flat image has none.
	flat := NewImage(32, 32)
	for y := range flat {
		for x := range flat[y] {
			flat[y][x] = 100
		}
	}
	if res := Sequential(flat, DefaultThreshold); len(res.Keypoints) != 0 {
		t.Errorf("flat image produced %d keypoints", len(res.Keypoints))
	}
}

func TestFromLuma(t *testing.T) {
	plane := []byte{1, 2, 3, 4, 5, 6}
	img := FromLuma(plane, 3, 2)
	if img[0][2] != 3 || img[1][0] != 4 {
		t.Errorf("FromLuma layout: %v", img)
	}
}

func TestDoGRow(t *testing.T) {
	out := DoGRow([]float64{5, 7}, []float64{2, 10})
	if out[0] != 3 || out[1] != -3 {
		t.Errorf("DoGRow %v", out)
	}
}

func TestExtremaRowThresholdAndStrictness(t *testing.T) {
	mk := func(v float64) [3][]float64 {
		z := func() []float64 { return make([]float64, 5) }
		rows := [3][]float64{z(), z(), z()}
		rows[1][2] = v
		return rows
	}
	zero := [3][]float64{make([]float64, 5), make([]float64, 5), make([]float64, 5)}
	// Above threshold: detected.
	if ks := ExtremaRow(1, 0, mk(10), zero, 2); len(ks) != 1 || ks[0].X != 2 {
		t.Errorf("expected one keypoint, got %v", ks)
	}
	// Below threshold: rejected.
	if ks := ExtremaRow(1, 0, mk(1), zero, 2); len(ks) != 0 {
		t.Errorf("sub-threshold keypoint %v", ks)
	}
	// Equal neighbour in the other level: not strict, rejected.
	other := mk(10)
	if ks := ExtremaRow(1, 0, mk(10), other, 2); len(ks) != 0 {
		t.Errorf("non-strict extremum accepted: %v", ks)
	}
	// Minima count too.
	if ks := ExtremaRow(1, 0, mk(-10), zero, 2); len(ks) != 1 {
		t.Errorf("minimum not detected: %v", ks)
	}
}
