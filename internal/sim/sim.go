// Package sim is the offline execution-node model the paper's §V-A alludes
// to ("the weighted graphs can serve as input to static offline analysis.
// For example, it could be used as input to a simulator to best determine
// how to initially configure a workload").
//
// The model captures the two resources that shape the paper's figures 9 and
// 10: a pool of worker threads executing kernel instances (kernel time plus
// per-instance dispatch overhead), and the single dedicated dependency-
// analyzer thread processing store/done events serially. Per-instance costs
// are taken from real instrumentation (a Report from an actual run), so the
// simulator extrapolates measured behaviour to machines with more cores than
// the present host — the same role the authors' simulator plays for
// alternative topologies.
//
// Two effects emerge naturally:
//   - near-linear scaling while worker work dominates (MJPEG, figure 9),
//     with the last core shared between a worker and the analyzer;
//   - saturation and regression when the serial analyzer becomes the
//     bottleneck (K-means, figure 10).
package sim

import (
	"fmt"
	"time"

	"repro/internal/runtime"
)

// KernelCost is the per-kernel input to the model.
type KernelCost struct {
	Name      string
	Instances int64
	// KernelPer and DispatchPer are mean per-instance times on the
	// reference machine.
	KernelPer   time.Duration
	DispatchPer time.Duration
	// Events is the number of analyzer events one instance generates
	// (its fired stores plus the done event).
	Events float64
}

// Model describes a simulated execution node.
type Model struct {
	Kernels []KernelCost
	// AnalyzerPerEvent is the serial analyzer's cost to process one event.
	AnalyzerPerEvent time.Duration
	// Cores is the simulated machine's physical core count.
	Cores int
	// Speed scales all costs (1.0 = the reference machine that produced
	// the instrumentation; the paper's Opteron would be ≈0.65 of its i7).
	Speed float64
	// ContentionPenalty models the slowdown idle workers inflict on a
	// saturated analyzer (ready-queue and event-channel contention): once
	// the analyzer is the bottleneck, each surplus worker multiplies the
	// analyzer's work by (1 + ContentionPenalty). The paper observes this
	// as rising K-means times beyond 4 workers (§VIII-B), more pronounced
	// on the Opteron whose cores cannot boost to absorb the serial
	// bottleneck. Zero disables the effect.
	ContentionPenalty float64
}

// FromReport builds per-kernel costs from a real instrumented run.
func FromReport(rep *runtime.Report) []KernelCost {
	var out []KernelCost
	for _, k := range rep.Kernels {
		if k.Instances == 0 {
			continue
		}
		out = append(out, KernelCost{
			Name:        k.Name,
			Instances:   k.Instances,
			KernelPer:   k.KernelPer(),
			DispatchPer: k.DispatchPer(),
			Events:      float64(k.StoreOps+k.Instances) / float64(k.Instances),
		})
	}
	return out
}

// CalibrateAnalyzer estimates the analyzer's per-event cost from a
// single-worker run on a single-core host, where wall time decomposes into
// worker work plus analyzer work: perEvent ≈ (wall - Σ instance costs) /
// Σ events. The estimate is clamped to a sane floor.
func CalibrateAnalyzer(rep *runtime.Report) time.Duration {
	var work time.Duration
	var events float64
	for _, k := range rep.Kernels {
		work += k.KernelTotal + k.DispatchTotal
		events += float64(k.StoreOps + k.Instances)
	}
	if events == 0 {
		return time.Microsecond
	}
	per := time.Duration(float64(rep.Wall-work) / events)
	if per < 500*time.Nanosecond {
		per = 500 * time.Nanosecond
	}
	return per
}

// WorkerWork is the total time the worker pool must spend.
func (m Model) WorkerWork() time.Duration {
	var w time.Duration
	for _, k := range m.Kernels {
		w += time.Duration(k.Instances) * (k.KernelPer + k.DispatchPer)
	}
	return m.scale(w)
}

// AnalyzerWork is the total time the serial analyzer must spend.
func (m Model) AnalyzerWork() time.Duration {
	var events float64
	for _, k := range m.Kernels {
		events += float64(k.Instances) * k.Events
	}
	return m.scale(time.Duration(events * float64(m.AnalyzerPerEvent)))
}

func (m Model) scale(d time.Duration) time.Duration {
	s := m.Speed
	if s <= 0 {
		s = 1
	}
	return time.Duration(float64(d) / s)
}

// Run predicts the wall time with the given number of worker threads. The
// analyzer always occupies its own thread; when workers+analyzer exceed the
// core count, the contended cores are shared, which is what bends the
// paper's curves at 8 workers on the 8-way machines.
func (m Model) Run(workers int) (time.Duration, error) {
	if workers < 1 {
		return 0, fmt.Errorf("sim: need at least one worker")
	}
	cores := m.Cores
	if cores < 1 {
		cores = 1
	}
	ww := float64(m.WorkerWork())
	aw := float64(m.AnalyzerWork())

	// Fixed-point on the makespan T:
	//   analyzer utilization  uA = aw / T  (≤ 1)
	//   cores left for workers = cores - uA (the analyzer's share of a core)
	//   effective worker parallelism = min(workers, cores - uA), ≥ a floor
	//   T = max(ww / eff, aw, critical-path serial floor)
	t := maxf(ww/float64(minInt(workers, cores)), aw)
	for i := 0; i < 64; i++ {
		uA := 0.0
		if t > 0 {
			uA = aw / t
			if uA > 1 {
				uA = 1
			}
		}
		eff := float64(minInt(workers, cores)) // threads can't exceed cores
		if workers+1 > cores {
			// A worker shares a core with the analyzer.
			eff = float64(cores) - uA
			if w := float64(workers); w < eff {
				eff = w
			}
			if eff < 0.5 {
				eff = 0.5
			}
		}
		nt := maxf(ww/eff, aw)
		if diff := nt - t; diff < 1 && diff > -1 {
			t = nt
			break
		}
		t = nt
	}
	// Analyzer-bound regime: surplus workers contend on the ready queue
	// and event channel, slowing the serial analyzer further.
	if m.ContentionPenalty > 0 && aw > 0 {
		needed := ww / aw // workers that would keep pace with the analyzer
		if surplus := float64(workers) - needed; surplus > 0 {
			penalized := aw * (1 + m.ContentionPenalty*surplus)
			t = maxf(t, penalized)
		}
	}
	return time.Duration(t), nil
}

// Sweep runs the model for 1..maxWorkers and returns predicted wall times.
func (m Model) Sweep(maxWorkers int) ([]time.Duration, error) {
	out := make([]time.Duration, maxWorkers)
	for w := 1; w <= maxWorkers; w++ {
		t, err := m.Run(w)
		if err != nil {
			return nil, err
		}
		out[w-1] = t
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
