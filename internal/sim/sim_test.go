package sim

import (
	"testing"
	"time"

	"repro/internal/runtime"
)

// mjpegLike models the paper's Table II: kernel time far above dispatch
// overhead, so worker work dominates.
func mjpegLike() Model {
	return Model{
		Kernels: []KernelCost{
			{Name: "yDCT", Instances: 80784, KernelPer: 170 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "uDCT", Instances: 20196, KernelPer: 170 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "vDCT", Instances: 20196, KernelPer: 170 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
			{Name: "vlc", Instances: 51, KernelPer: 2160 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 3},
		},
		AnalyzerPerEvent: 2 * time.Microsecond,
		Cores:            8,
	}
}

// kmeansLike models Table III: dispatch of the same order as kernel time,
// so the serial analyzer saturates.
func kmeansLike() Model {
	return Model{
		Kernels: []KernelCost{
			{Name: "assign", Instances: 20000, KernelPer: 7 * time.Microsecond, DispatchPer: 4 * time.Microsecond, Events: 2},
			{Name: "refine", Instances: 1000, KernelPer: 93 * time.Microsecond, DispatchPer: 3 * time.Microsecond, Events: 2},
		},
		AnalyzerPerEvent:  3 * time.Microsecond,
		Cores:             8,
		ContentionPenalty: 0.08,
	}
}

func TestFig9ShapeNearLinear(t *testing.T) {
	m := mjpegLike()
	times, err := m.Sweep(8)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-increasing.
	for w := 1; w < 8; w++ {
		if times[w] > times[w-1] {
			t.Errorf("MJPEG model regressed from %d to %d workers: %v -> %v", w, w+1, times[w-1], times[w])
		}
	}
	// Near-linear speedup through 7 workers (within 20% of ideal).
	sp7 := float64(times[0]) / float64(times[6])
	if sp7 < 5.6 {
		t.Errorf("speedup at 7 workers = %.2f, want near-linear (>5.6)", sp7)
	}
	// The 8th worker shares a core with the analyzer: the gain from 7 to 8
	// is visibly smaller than from 6 to 7 (the figure's flattening).
	gain67 := float64(times[5]) - float64(times[6])
	gain78 := float64(times[6]) - float64(times[7])
	if gain78 > gain67*0.9 {
		t.Errorf("no flattening at 8 workers: gains %.2fms then %.2fms", gain67/1e6, gain78/1e6)
	}
}

func TestFig10ShapeSaturates(t *testing.T) {
	m := kmeansLike()
	times, err := m.Sweep(8)
	if err != nil {
		t.Fatal(err)
	}
	// Initial speedup exists.
	if times[1] >= times[0] {
		t.Errorf("no speedup from 1 to 2 workers: %v -> %v", times[0], times[1])
	}
	// Saturation: the analyzer bound makes the curve flat (or worse) well
	// before 8 workers; find the knee.
	knee := 8
	for w := 1; w < 8; w++ {
		if float64(times[w]) > float64(times[w-1])*0.97 {
			knee = w
			break
		}
	}
	if knee > 5 {
		t.Errorf("K-means model should saturate by ~4-5 workers, knee at %d (times %v)", knee, times)
	}
	// The floor is the analyzer work.
	if times[7] < m.AnalyzerWork() {
		t.Errorf("makespan %v below analyzer work %v", times[7], m.AnalyzerWork())
	}
	// Beyond the knee the curve rises again — the figure 10 regression the
	// paper attributes to contention on the saturated analyzer.
	if times[7] <= times[3] {
		t.Errorf("expected regression from 4 to 8 workers, got %v -> %v", times[3], times[7])
	}
}

func TestSpeedScalesUniformly(t *testing.T) {
	m := mjpegLike()
	slow := m
	slow.Speed = 0.5
	a, _ := m.Run(4)
	b, _ := slow.Run(4)
	ratio := float64(b) / float64(a)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("half-speed machine should take ~2x, got %.2fx", ratio)
	}
}

func TestFromReportAndCalibrate(t *testing.T) {
	rep := &runtime.Report{
		Wall: 100 * time.Millisecond,
		Kernels: []runtime.KernelStats{
			{Name: "a", Instances: 100, KernelTotal: 40 * time.Millisecond, DispatchTotal: 10 * time.Millisecond, StoreOps: 100},
			{Name: "skip", Instances: 0},
		},
	}
	costs := FromReport(rep)
	if len(costs) != 1 {
		t.Fatalf("costs %v", costs)
	}
	c := costs[0]
	if c.KernelPer != 400*time.Microsecond || c.DispatchPer != 100*time.Microsecond || c.Events != 2 {
		t.Errorf("cost %+v", c)
	}
	// wall - work = 50ms over 200 events = 250µs/event.
	per := CalibrateAnalyzer(rep)
	if per != 250*time.Microsecond {
		t.Errorf("calibrated per-event = %v", per)
	}
	// Degenerate inputs clamp.
	if CalibrateAnalyzer(&runtime.Report{}) != time.Microsecond {
		t.Error("empty report should clamp")
	}
	fast := &runtime.Report{Wall: time.Millisecond, Kernels: []runtime.KernelStats{
		{Name: "a", Instances: 10, KernelTotal: 10 * time.Millisecond, StoreOps: 10},
	}}
	if CalibrateAnalyzer(fast) < 500*time.Nanosecond {
		t.Error("negative residual should clamp to floor")
	}
}

func TestRunValidation(t *testing.T) {
	m := mjpegLike()
	if _, err := m.Run(0); err == nil {
		t.Error("0 workers should error")
	}
	// Zero cores defaults to 1.
	m.Cores = 0
	if d, err := m.Run(4); err != nil || d <= 0 {
		t.Errorf("cores default: %v %v", d, err)
	}
}
