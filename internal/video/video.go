// Package video provides raw YUV 4:2:0 frames, file I/O and a deterministic
// synthetic source that substitutes for the paper's Foreman CIF test
// sequence. The MJPEG evaluation depends only on frame geometry (the number
// of 8x8 macroblocks) and on DCT cost, which is content-independent for the
// naive DCT the paper uses; the synthetic source exercises the identical code
// path with reproducible content.
package video

import (
	"fmt"
	"io"
	"math"
)

// CIF is the resolution the paper's evaluation uses: 352x288 pixels, which
// yields 1584 luma and 2x396 chroma macroblocks per frame.
const (
	CIFWidth  = 352
	CIFHeight = 288
)

// Frame is one uncompressed YUV 4:2:0 frame: full-resolution luma and
// quarter-resolution chroma planes.
type Frame struct {
	W, H    int
	Y, U, V []byte
}

// NewFrame allocates a zeroed frame. Width and height must be even.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: invalid frame size %dx%d (must be positive and even)", w, h))
	}
	return &Frame{W: w, H: h, Y: make([]byte, w*h), U: make([]byte, w*h/4), V: make([]byte, w*h/4)}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	c := NewFrame(f.W, f.H)
	copy(c.Y, f.Y)
	copy(c.U, f.U)
	copy(c.V, f.V)
	return c
}

// Source produces a sequence of frames; Next returns io.EOF when exhausted.
type Source interface {
	Next() (*Frame, error)
}

// Synthetic is a deterministic frame generator: a moving diagonal gradient,
// a moving bright disc and pseudo-random texture, all derived from the seed
// and frame index so two generators with equal parameters produce identical
// sequences.
type Synthetic struct {
	w, h   int
	frames int
	seed   uint64
	next   int
}

// NewSynthetic creates a source of n frames at the given size.
func NewSynthetic(w, h, n int, seed uint64) *Synthetic {
	return &Synthetic{w: w, h: h, frames: n, seed: seed}
}

// NewCIFSource is shorthand for a CIF-resolution synthetic source.
func NewCIFSource(frames int, seed uint64) *Synthetic {
	return NewSynthetic(CIFWidth, CIFHeight, frames, seed)
}

// xorshift is a tiny deterministic PRNG for texture; the quality of the
// randomness is irrelevant, stability across platforms is what matters.
func xorshift(s uint64) uint64 {
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	return s
}

// Next generates the next frame, or io.EOF after the configured count.
func (s *Synthetic) Next() (*Frame, error) {
	if s.next >= s.frames {
		return nil, io.EOF
	}
	t := s.next
	s.next++
	f := NewFrame(s.w, s.h)
	// Moving disc center.
	cx := float64(s.w)/2 + float64(s.w)/4*math.Sin(float64(t)*0.21)
	cy := float64(s.h)/2 + float64(s.h)/4*math.Cos(float64(t)*0.17)
	r := float64(s.h) / 6
	rng := s.seed ^ uint64(t)*0x9e3779b97f4a7c15
	for y := 0; y < s.h; y++ {
		for x := 0; x < s.w; x++ {
			// Diagonal gradient that drifts with time.
			v := (x + y + 3*t) % 256
			// Bright disc.
			dx, dy := float64(x)-cx, float64(y)-cy
			if dx*dx+dy*dy < r*r {
				v = (v + 160) % 256
			}
			// Texture noise in the low bits.
			rng = xorshift(rng + uint64(x))
			v = (v &^ 7) | int(rng&7)
			f.Y[y*s.w+x] = byte(v)
		}
	}
	cw, ch := s.w/2, s.h/2
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			f.U[y*cw+x] = byte((x*2 + 5*t) % 256)
			f.V[y*cw+x] = byte((y*2 + 7*t) % 256)
		}
	}
	return f, nil
}

// WriteYUV appends the frame's planes in planar I420 order.
func WriteYUV(w io.Writer, f *Frame) error {
	for _, p := range [][]byte{f.Y, f.U, f.V} {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// Reader reads planar I420 frames of a fixed size from a stream.
type Reader struct {
	r    io.Reader
	w, h int
}

// NewReader wraps r as a Source of w x h frames.
func NewReader(r io.Reader, w, h int) *Reader {
	return &Reader{r: r, w: w, h: h}
}

// Next reads one frame; it returns io.EOF cleanly at end of stream and
// io.ErrUnexpectedEOF for a truncated frame.
func (rd *Reader) Next() (*Frame, error) {
	f := NewFrame(rd.w, rd.h)
	if _, err := io.ReadFull(rd.r, f.Y); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	for _, p := range [][]byte{f.U, f.V} {
		if _, err := io.ReadFull(rd.r, p); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
	}
	return f, nil
}

// PSNR computes the peak signal-to-noise ratio between two equally sized
// frames over all three planes, in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("video: PSNR of differently sized frames")
	}
	var se float64
	n := 0
	for _, pair := range [][2][]byte{{a.Y, b.Y}, {a.U, b.U}, {a.V, b.V}} {
		for i := range pair[0] {
			d := float64(pair[0][i]) - float64(pair[1][i])
			se += d * d
		}
		n += len(pair[0])
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := se / float64(n)
	return 10 * math.Log10(255*255/mse)
}
