package video

import (
	"bytes"
	"io"
	"math"
	"testing"
)

func TestSyntheticDeterminism(t *testing.T) {
	a := NewSynthetic(64, 48, 3, 7)
	b := NewSynthetic(64, 48, 3, 7)
	for i := 0; i < 3; i++ {
		fa, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fa.Y, fb.Y) || !bytes.Equal(fa.U, fb.U) || !bytes.Equal(fa.V, fb.V) {
			t.Fatalf("frame %d differs between equal generators", i)
		}
	}
	if _, err := a.Next(); err != io.EOF {
		t.Fatalf("expected EOF after 3 frames, got %v", err)
	}
}

func TestSyntheticSeedsAndFramesDiffer(t *testing.T) {
	f0, _ := NewSynthetic(64, 48, 2, 1).Next()
	f1, _ := NewSynthetic(64, 48, 2, 2).Next()
	if bytes.Equal(f0.Y, f1.Y) {
		t.Error("different seeds should give different luma")
	}
	src := NewSynthetic(64, 48, 2, 1)
	a, _ := src.Next()
	b, _ := src.Next()
	if bytes.Equal(a.Y, b.Y) {
		t.Error("consecutive frames should differ (motion)")
	}
}

func TestCIFSourceGeometry(t *testing.T) {
	f, err := NewCIFSource(1, 0).Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 352 || f.H != 288 {
		t.Fatalf("CIF frame is %dx%d", f.W, f.H)
	}
	if len(f.Y) != 352*288 || len(f.U) != 176*144 || len(f.V) != 176*144 {
		t.Error("plane sizes")
	}
	// Geometry that drives the paper's instance counts: 1584 luma blocks,
	// 396 chroma blocks per plane.
	if (f.W/8)*(f.H/8) != 1584 || (f.W/16)*(f.H/16) != 396 {
		t.Error("macroblock counts do not match the paper")
	}
}

func TestNewFrameValidation(t *testing.T) {
	for _, dims := range [][2]int{{0, 2}, {2, 0}, {3, 2}, {2, 3}, {-2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFrame(%v) should panic", dims)
				}
			}()
			NewFrame(dims[0], dims[1])
		}()
	}
}

func TestYUVRoundTrip(t *testing.T) {
	src := NewSynthetic(32, 16, 2, 3)
	var buf bytes.Buffer
	var orig []*Frame
	for {
		f, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		orig = append(orig, f)
		if err := WriteYUV(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	rd := NewReader(&buf, 32, 16)
	for i, want := range orig {
		got, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got.Y, want.Y) || !bytes.Equal(got.U, want.U) || !bytes.Equal(got.V, want.V) {
			t.Fatalf("frame %d round-trip mismatch", i)
		}
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	f := NewFrame(16, 16)
	var buf bytes.Buffer
	if err := WriteYUV(&buf, f); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	rd := NewReader(bytes.NewReader(trunc), 16, 16)
	if _, err := rd.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("expected ErrUnexpectedEOF, got %v", err)
	}
}

func TestClone(t *testing.T) {
	f, _ := NewSynthetic(16, 16, 1, 9).Next()
	c := f.Clone()
	c.Y[0] ^= 0xff
	if f.Y[0] == c.Y[0] {
		t.Error("clone aliases source")
	}
}

func TestPSNR(t *testing.T) {
	f, _ := NewSynthetic(32, 32, 1, 4).Next()
	if !math.IsInf(PSNR(f, f), 1) {
		t.Error("identical frames should have infinite PSNR")
	}
	g := f.Clone()
	for i := range g.Y {
		g.Y[i] ^= 4
	}
	p := PSNR(f, g)
	if p < 20 || p > 60 {
		t.Errorf("small perturbation PSNR = %v, expected moderate value", p)
	}
	h := NewFrame(32, 32) // all zeros vs content
	if PSNR(f, h) >= p {
		t.Error("gross difference should have lower PSNR than slight one")
	}
	defer func() {
		if recover() == nil {
			t.Error("size mismatch should panic")
		}
	}()
	PSNR(f, NewFrame(16, 16))
}
