package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/runtime"
)

// KMeansConfig parameterizes the K-means workload. The paper's evaluation
// uses N=2000 points, K=100 clusters and 10 iterations (§VIII-B).
type KMeansConfig struct {
	N    int // number of datapoints
	Dim  int // point dimensionality
	K    int // number of clusters
	Iter int // fixed iteration count (the paper's break-point)
	Seed uint64
}

// withDefaults fills the paper's parameters for zero fields.
func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.N == 0 {
		c.N = 2000
	}
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.Iter == 0 {
		c.Iter = 10
	}
	return c
}

// KMeans builds the figure 7 program:
//
//	init ─▶ datapoints(0) ──▶ assign ─▶ membership(a) ─▶ refine ─▶ centroids(a+1)
//	     └─▶ centroids(0) ──▶ assign                      ▲
//	                          (loop: refine feeds the next age's assign)
//
// One assign instance runs per datapoint per iteration; one refine instance
// per cluster per iteration; print runs once per iteration plus once for the
// final centroids. Iterations are bounded by the runtime options from
// KMeansOptions — the scheduler-level break-point the paper describes.
func KMeans(cfg KMeansConfig) *core.Program {
	cfg = cfg.withDefaults()
	b := core.NewBuilder("kmeans")
	b.Field("datapoints", field.Any, 1, true)
	b.Field("centroids", field.Any, 1, true)
	b.Field("membership", field.Int32, 1, true)

	b.Kernel("init").
		Local("pts", field.Any, 1).
		Local("cents", field.Any, 1).
		StoreAll("datapoints", core.AgeAt(0), "pts").
		StoreAll("centroids", core.AgeAt(0), "cents").
		Body(func(c *core.Ctx) error {
			points := kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed)
			pa := c.Array("pts")
			for i, p := range points {
				pa.Put(field.AnyVal(p), i)
			}
			ca := c.Array("cents")
			for i, p := range kmeans.InitialCentroids(points, cfg.K) {
				ca.Put(field.AnyVal(p), i)
			}
			return nil
		})

	b.Kernel("assign").Age("a").Index("x").
		Local("p", field.Any, 0).
		Local("cents", field.Any, 1).
		Local("m", field.Int32, 0).
		Fetch("p", "datapoints", core.AgeAt(0), core.Idx("x")).
		FetchAll("cents", "centroids", core.AgeVar(0)).
		Store("membership", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "m").
		Body(func(c *core.Ctx) error {
			p := c.Obj("p").(kmeans.Point)
			ca := c.Array("cents")
			cents := make([]kmeans.Point, ca.Extent(0))
			for i := range cents {
				cents[i] = ca.At(i).Obj().(kmeans.Point)
			}
			c.SetInt32("m", int32(kmeans.Assign(p, cents)))
			return nil
		})

	b.Kernel("refine").Age("a").Index("c").
		Local("cent", field.Any, 0).
		Local("ms", field.Int32, 1).
		Local("pts", field.Any, 1).
		Local("next", field.Any, 0).
		Fetch("cent", "centroids", core.AgeVar(0), core.Idx("c")).
		FetchAll("ms", "membership", core.AgeVar(0)).
		FetchAll("pts", "datapoints", core.AgeAt(0)).
		Store("centroids", core.AgeVar(1), []core.IndexSpec{core.Idx("c")}, "next").
		Body(func(c *core.Ctx) error {
			prev := c.Obj("cent").(kmeans.Point)
			ma := c.Array("ms")
			pa := c.Array("pts")
			n := pa.Extent(0)
			points := make([]kmeans.Point, n)
			membership := make([]int, n)
			for i := 0; i < n; i++ {
				points[i] = pa.At(i).Obj().(kmeans.Point)
				membership[i] = int(ma.At(i).Int32())
			}
			c.SetObj("next", kmeans.Refine(c.Index("c"), points, membership, prev))
			return nil
		})

	b.Kernel("print").Age("a").
		Local("cents", field.Any, 1).
		FetchAll("cents", "centroids", core.AgeVar(0)).
		Body(func(c *core.Ctx) error {
			ca := c.Array("cents")
			var sum float64
			for i := 0; i < ca.Extent(0); i++ {
				p := ca.At(i).Obj().(kmeans.Point)
				for _, v := range p {
					sum += v
				}
			}
			c.Printf("iteration %d: %d centroids, coordinate sum %.4f\n", c.Age(), ca.Extent(0), sum)
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: kmeans program invalid: %v", err))
	}
	return p
}

// KMeansOptions returns runtime options that bound the loop to cfg.Iter
// iterations: assign and refine run for ages 0..Iter-1, print additionally
// sees the final centroids at age Iter. These per-kernel bounds are the
// break-point §VIII-B introduces to make running times comparable.
func KMeansOptions(cfg KMeansConfig, workers int) runtime.Options {
	cfg = cfg.withDefaults()
	return runtime.Options{
		Workers: workers,
		KernelMaxAge: map[string]int{
			"assign": cfg.Iter - 1,
			"refine": cfg.Iter - 1,
			"print":  cfg.Iter,
		},
	}
}

// KMeansCentroids extracts the centroids at the given age from a finished
// node.
func KMeansCentroids(n *runtime.Node, age int) ([]kmeans.Point, error) {
	s, err := n.Snapshot("centroids", age)
	if err != nil {
		return nil, err
	}
	out := make([]kmeans.Point, s.Extent(0))
	for i := range out {
		out[i] = s.At(i).Obj().(kmeans.Point)
	}
	return out, nil
}
