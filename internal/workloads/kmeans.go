package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/runtime"
)

// KMeansConfig parameterizes the K-means workload. The paper's evaluation
// uses N=2000 points, K=100 clusters and 10 iterations (§VIII-B).
type KMeansConfig struct {
	N    int // number of datapoints
	Dim  int // point dimensionality
	K    int // number of clusters
	Iter int // fixed iteration count (the paper's break-point)
	Seed uint64
}

// withDefaults fills the paper's parameters for zero fields.
func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.N == 0 {
		c.N = 2000
	}
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.Iter == 0 {
		c.Iter = 10
	}
	return c
}

// KMeans builds the figure 7 program:
//
//	init ─▶ datapoints(0) ──▶ assign ─▶ membership(a) ─▶ refine ─▶ centroids(a+1)
//	     └─▶ centroids(0) ──▶ assign                      ▲
//	                          (loop: refine feeds the next age's assign)
//
// One assign instance runs per datapoint per iteration; one refine instance
// per cluster per iteration; print runs once per iteration plus once for the
// final centroids. Iterations are bounded by the runtime options from
// KMeansOptions — the scheduler-level break-point the paper describes.
//
// Datapoints and centroids are rank-2 float64 fields ([point][coordinate]):
// assign slab-fetches its point row, refine slab-stores its new centroid row,
// and the kernel bodies run over the flat typed backing — the memory path
// never boxes a coordinate.
func KMeans(cfg KMeansConfig) *core.Program {
	cfg = cfg.withDefaults()
	b := core.NewBuilder("kmeans")
	b.Field("datapoints", field.Float64, 2, true)
	b.Field("centroids", field.Float64, 2, true)
	b.Field("membership", field.Int32, 1, true)

	b.Kernel("init").
		Local("pts", field.Float64, 2).
		Local("cents", field.Float64, 2).
		StoreAll("datapoints", core.AgeAt(0), "pts").
		StoreAll("centroids", core.AgeAt(0), "cents").
		Body(func(c *core.Ctx) error {
			points := kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed)
			pa := c.Array("pts")
			pa.Grow(cfg.N, cfg.Dim)
			flat := pa.Float64s()
			for i, p := range points {
				copy(flat[i*cfg.Dim:(i+1)*cfg.Dim], p)
			}
			ca := c.Array("cents")
			ca.Grow(cfg.K, cfg.Dim)
			cf := ca.Float64s()
			for i, p := range kmeans.InitialCentroids(points, cfg.K) {
				copy(cf[i*cfg.Dim:(i+1)*cfg.Dim], p)
			}
			return nil
		})

	b.Kernel("assign").Age("a").Index("x").
		Local("p", field.Float64, 1).
		Local("cents", field.Float64, 2).
		Local("m", field.Int32, 0).
		Fetch("p", "datapoints", core.AgeAt(0), core.Idx("x"), core.All()).
		FetchAll("cents", "centroids", core.AgeVar(0)).
		Store("membership", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "m").
		Body(func(c *core.Ctx) error {
			ca := c.Array("cents")
			m := kmeans.AssignFlat(c.Array("p").Float64s(), ca.Float64s(), ca.Extent(1))
			c.SetInt32("m", int32(m))
			return nil
		})

	b.Kernel("refine").Age("a").Index("c").
		Local("cent", field.Float64, 1).
		Local("ms", field.Int32, 1).
		Local("pts", field.Float64, 2).
		Local("next", field.Float64, 1).
		Fetch("cent", "centroids", core.AgeVar(0), core.Idx("c"), core.All()).
		FetchAll("ms", "membership", core.AgeVar(0)).
		FetchAll("pts", "datapoints", core.AgeAt(0)).
		Store("centroids", core.AgeVar(1), []core.IndexSpec{core.Idx("c"), core.All()}, "next").
		Body(func(c *core.Ctx) error {
			pa := c.Array("pts")
			dim := pa.Extent(1)
			next := c.Array("next")
			next.Grow(dim)
			kmeans.RefineFlat(c.Index("c"), pa.Float64s(), dim,
				c.Array("ms").Int32s(), c.Array("cent").Float64s(), next.Float64s())
			return nil
		})

	b.Kernel("print").Age("a").
		Local("cents", field.Float64, 2).
		FetchAll("cents", "centroids", core.AgeVar(0)).
		Body(func(c *core.Ctx) error {
			ca := c.Array("cents")
			var sum float64
			for _, v := range ca.Float64s() {
				sum += v
			}
			c.Printf("iteration %d: %d centroids, coordinate sum %.4f\n", c.Age(), ca.Extent(0), sum)
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: kmeans program invalid: %v", err))
	}
	return p
}

// KMeansOptions returns runtime options that bound the loop to cfg.Iter
// iterations: assign and refine run for ages 0..Iter-1, print additionally
// sees the final centroids at age Iter. These per-kernel bounds are the
// break-point §VIII-B introduces to make running times comparable.
func KMeansOptions(cfg KMeansConfig, workers int) runtime.Options {
	cfg = cfg.withDefaults()
	return runtime.Options{
		Workers: workers,
		KernelMaxAge: map[string]int{
			"assign": cfg.Iter - 1,
			"refine": cfg.Iter - 1,
			"print":  cfg.Iter,
		},
	}
}

// CentroidPoints converts a rank-2 centroids snapshot ([cluster][coordinate]
// float64) into per-cluster points (copied out of the snapshot).
func CentroidPoints(s *field.Array) []kmeans.Point {
	k, dim := s.Extent(0), s.Extent(1)
	flat := s.Float64s()
	out := make([]kmeans.Point, k)
	for c := range out {
		out[c] = append(kmeans.Point(nil), flat[c*dim:(c+1)*dim]...)
	}
	return out
}

// KMeansCentroids extracts the centroids at the given age from a finished
// node.
func KMeansCentroids(n *runtime.Node, age int) ([]kmeans.Point, error) {
	s, err := n.Snapshot("centroids", age)
	if err != nil {
		return nil, err
	}
	return CentroidPoints(s), nil
}
