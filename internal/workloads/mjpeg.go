package workloads

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/video"
)

// MJPEGConfig parameterizes the Motion JPEG workload (paper figure 8).
type MJPEGConfig struct {
	// Source provides raw frames; the read/splitYUV kernel pulls one per
	// age until the source returns io.EOF.
	Source video.Source
	// Quality is the IJG quality factor (0 selects the default).
	Quality int
	// FastDCT selects the AAN transform for the *DCT kernels.
	FastDCT bool
	// Out, when non-nil, receives the concatenated JPEG frames in display
	// order (the "write" half of the VLC+write kernel). The encoded frames
	// are additionally stored in the `bitstream` field, one per age.
	Out io.Writer
}

// blockLen is the flat row length of one macroblock (8x8 samples).
const blockLen = mjpeg.BlockSize * mjpeg.BlockSize

// MJPEG builds the figure 8 program:
//
//	read/splityuv ──▶ yInput ──▶ yDCT ──▶ yResult ─┐
//	              ├─▶ uInput ──▶ uDCT ──▶ uResult ─┼─▶ vlc/write ─▶ bitstream
//	              └─▶ vInput ──▶ vDCT ──▶ vResult ─┘
//
// One yDCT instance runs per 8x8 luma macroblock per frame (1584 for CIF),
// one uDCT/vDCT per chroma macroblock (396 each). vlc/write serializes
// itself through an aging token field so frames hit the output stream in
// order, and writes one extra, empty instance at end of stream — the paper's
// 51st VLC instance for 50 frames.
//
// The pixel and coefficient fields are rank-2 typed slabs ([block][64]):
// inputs are uint8 samples, results int32 coefficients. Each DCT instance
// slab-fetches its 64-byte row and slab-stores its coefficient row, and
// vlc/write encodes straight out of the flat int32 backing — no per-block
// boxing anywhere on the frame path.
func MJPEG(cfg MJPEGConfig) *core.Program {
	if cfg.Source == nil {
		panic("workloads: MJPEG requires a video source")
	}
	enc := &mjpeg.Encoder{Quality: cfg.Quality, FastDCT: cfg.FastDCT}
	qLuma, qChroma := enc.Tables()

	b := core.NewBuilder("mjpeg")
	for _, f := range []string{"yInput", "uInput", "vInput"} {
		b.Field(f, field.Uint8, 2, true)
	}
	for _, f := range []string{"yResult", "uResult", "vResult"} {
		b.Field(f, field.Int32, 2, true)
	}
	b.Field("bitstream", field.Any, 1, true)
	b.Field("dims", field.Int32, 1, true) // frame [width, height], per age
	b.Field("token", field.Int32, 1, true)

	b.Kernel("init").
		Local("t", field.Int32, 0).
		Store("token", core.AgeAt(0), []core.IndexSpec{core.Lit(0)}, "t").
		Body(func(c *core.Ctx) error {
			c.SetInt32("t", 1)
			return nil
		})

	// Frame dimensions flow from the read kernel to vlc_write through the
	// dims field — ordinary dataflow, so the kernels may run on different
	// nodes of a distributed deployment.
	b.Kernel("read_splityuv").Age("a").
		Local("y", field.Uint8, 2).
		Local("u", field.Uint8, 2).
		Local("v", field.Uint8, 2).
		Local("d", field.Int32, 1).
		StoreAll("yInput", core.AgeVar(0), "y").
		StoreAll("uInput", core.AgeVar(0), "u").
		StoreAll("vInput", core.AgeVar(0), "v").
		StoreAll("dims", core.AgeVar(0), "d").
		Body(func(c *core.Ctx) error {
			f, err := cfg.Source.Next()
			if err == io.EOF {
				c.Stop()
				return nil
			}
			if err != nil {
				return fmt.Errorf("reading frame %d: %w", c.Age(), err)
			}
			d := c.Array("d")
			d.Put(field.Int32Val(int32(f.W)), 0)
			d.Put(field.Int32Val(int32(f.H)), 1)
			for _, pl := range [3]struct {
				name string
				data []byte
				w, h int
			}{
				{"y", f.Y, f.W, f.H},
				{"u", f.U, f.W / 2, f.H / 2},
				{"v", f.V, f.W / 2, f.H / 2},
			} {
				arr := c.Array(pl.name)
				arr.Grow(mjpeg.NumBlocks(pl.w, pl.h), blockLen)
				mjpeg.ExtractBlocksU8(pl.data, pl.w, pl.h, arr.Uint8s())
			}
			return nil
		})

	dct := func(kernel, in, out string, qt *mjpeg.QuantTable) {
		b.Kernel(kernel).Age("a").Index("x").
			Local("blk", field.Uint8, 1).
			Local("res", field.Int32, 1).
			Fetch("blk", in, core.AgeVar(0), core.Idx("x"), core.All()).
			Store(out, core.AgeVar(0), []core.IndexSpec{core.Idx("x"), core.All()}, "res").
			Body(func(c *core.Ctx) error {
				px := c.Array("blk").Uint8s()
				var blk mjpeg.Block
				for i, v := range px {
					blk[i] = int32(v)
				}
				res := c.Array("res")
				res.Grow(blockLen)
				mjpeg.DCTQuantBlock(&blk, qt, cfg.FastDCT, (*mjpeg.Block)(res.Int32s()))
				return nil
			})
	}
	dct("yDCT", "yInput", "yResult", qLuma)
	dct("uDCT", "uInput", "uResult", qChroma)
	dct("vDCT", "vInput", "vResult", qChroma)

	b.Kernel("vlc_write").Age("a").
		Local("y", field.Int32, 2).
		Local("u", field.Int32, 2).
		Local("v", field.Int32, 2).
		Local("tok", field.Int32, 0).
		Local("tokOut", field.Int32, 0).
		Local("jpeg", field.Any, 0).
		Local("d", field.Int32, 1).
		FetchAll("y", "yResult", core.AgeVar(0)).
		FetchAll("u", "uResult", core.AgeVar(0)).
		FetchAll("v", "vResult", core.AgeVar(0)).
		FetchAll("d", "dims", core.AgeVar(0)).
		Fetch("tok", "token", core.AgeVar(0), core.Lit(0)).
		Store("bitstream", core.AgeVar(0), []core.IndexSpec{core.Lit(0)}, "jpeg").
		Store("token", core.AgeVar(1), []core.IndexSpec{core.Lit(0)}, "tokOut").
		Body(func(c *core.Ctx) error {
			ya := c.Array("y")
			if ya.Extent(0) == 0 {
				// End of stream: the extra instance that encodes nothing.
				// Leaving jpeg and tokOut unbound suppresses both stores,
				// which ends the token chain cleanly.
				return nil
			}
			coeffs := [3][]int32{ya.Int32s(), c.Array("u").Int32s(), c.Array("v").Int32s()}
			d := c.Array("d")
			data := mjpeg.EncodeFrameJPEGFlat(&coeffs, int(d.At(0).Int32()), int(d.At(1).Int32()), qLuma, qChroma)
			if cfg.Out != nil {
				if _, err := cfg.Out.Write(data); err != nil {
					return fmt.Errorf("writing frame %d: %w", c.Age(), err)
				}
			}
			c.SetObj("jpeg", data)
			c.SetInt32("tokOut", 1)
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: mjpeg program invalid: %v", err))
	}
	return p
}

// MJPEGStream collects the encoded frames from a finished node's bitstream
// field into one contiguous MJPEG stream in age order.
func MJPEGStream(n *runtime.Node, frames int) ([]byte, error) {
	var out []byte
	for a := 0; a < frames; a++ {
		s, err := n.Snapshot("bitstream", a)
		if err != nil {
			return nil, err
		}
		if s.Extent(0) == 0 {
			return nil, fmt.Errorf("workloads: no bitstream stored for frame %d", a)
		}
		out = append(out, s.At(0).Obj().([]byte)...)
	}
	return out, nil
}
