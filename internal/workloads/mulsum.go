// Package workloads contains the paper's evaluation programs expressed
// against the P2G program model: the mul2/plus5 pipeline of figure 5, the
// Motion JPEG encoder of figure 8 and the K-means clustering of figure 7.
// Each is the Go-native equivalent of its kernel-language source in
// testdata/; the bodies call into the same substrate code (packages mjpeg,
// kmeans) that the standalone baselines use, so P2G and baseline outputs can
// be compared bit for bit.
package workloads

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/field"
)

// MulSum builds the figure 5 example: init seeds m_data(0) with
// {10,11,12,13,14}; mul2 doubles elements of m_data(a) into p_data(a); plus5
// adds 5 to p_data(a) into m_data(a+1); print emits both fields per age. The
// program has no termination condition — bound it with Options.MaxAge.
func MulSum() *core.Program {
	b := core.NewBuilder("mulsum")
	b.Field("m_data", field.Int32, 1, true)
	b.Field("p_data", field.Int32, 1, true)

	b.Kernel("init").
		Local("values", field.Int32, 1).
		StoreAll("m_data", core.AgeAt(0), "values").
		Body(func(c *core.Ctx) error {
			vs := c.Array("values")
			for i := 0; i < 5; i++ {
				vs.Put(field.Int32Val(int32(i+10)), i)
			}
			return nil
		})

	b.Kernel("mul2").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "m_data", core.AgeVar(0), core.Idx("x")).
		Store("p_data", core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "value").
		Body(func(c *core.Ctx) error {
			c.SetInt32("value", c.Int32("value")*2)
			return nil
		})

	b.Kernel("plus5").Age("a").Index("x").
		Local("value", field.Int32, 0).
		Fetch("value", "p_data", core.AgeVar(0), core.Idx("x")).
		Store("m_data", core.AgeVar(1), []core.IndexSpec{core.Idx("x")}, "value").
		Body(func(c *core.Ctx) error {
			c.SetInt32("value", c.Int32("value")+5)
			return nil
		})

	b.Kernel("print").Age("a").
		Local("m", field.Int32, 1).
		Local("p", field.Int32, 1).
		FetchAll("m", "m_data", core.AgeVar(0)).
		FetchAll("p", "p_data", core.AgeVar(0)).
		Body(func(c *core.Ctx) error {
			var sb strings.Builder
			for _, name := range []string{"m", "p"} {
				arr := c.Array(name)
				for i := 0; i < arr.Extent(0); i++ {
					fmt.Fprintf(&sb, "%d ", arr.At(i).Int32())
				}
				sb.WriteByte('\n')
			}
			c.Printf("%s", sb.String())
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: mulsum program invalid: %v", err))
	}
	return p
}
