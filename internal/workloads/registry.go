package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/mjpeg"
	"repro/internal/video"
)

// RegisterPayloads registers every Any payload type the built-in workloads
// send through fields, so they survive gob encoding across node boundaries.
func RegisterPayloads() {
	field.RegisterPayload(kmeans.Point{})
	field.RegisterPayload(&mjpeg.Block{})
	field.RegisterPayload([]byte(nil))
}

// FromSpec builds a workload program from a textual spec, the format the
// distributed tools exchange:
//
//	mulsum
//	kmeans:n=2000,k=100,iter=10,seed=7
//	mjpeg:frames=50,w=352,h=288,quality=75,seed=42,fast=0
//
// Every participating node must use the same spec so program structures
// agree.
func FromSpec(spec string) (*core.Program, error) {
	name, argstr, _ := strings.Cut(spec, ":")
	args := map[string]string{}
	if argstr != "" {
		for _, part := range strings.Split(argstr, ",") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				return nil, fmt.Errorf("workloads: bad spec argument %q", part)
			}
			args[k] = v
		}
	}
	num := func(key string, def int) (int, error) {
		s, ok := args[key]
		if !ok {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	switch name {
	case "mulsum":
		return MulSum(), nil
	case "kmeans":
		cfg := KMeansConfig{}
		var err error
		if cfg.N, err = num("n", 0); err != nil {
			return nil, err
		}
		if cfg.K, err = num("k", 0); err != nil {
			return nil, err
		}
		if cfg.Dim, err = num("dim", 0); err != nil {
			return nil, err
		}
		if cfg.Iter, err = num("iter", 0); err != nil {
			return nil, err
		}
		seed, err := num("seed", 7)
		if err != nil {
			return nil, err
		}
		cfg.Seed = uint64(seed)
		return KMeans(cfg), nil
	case "mjpeg":
		frames, err := num("frames", 50)
		if err != nil {
			return nil, err
		}
		w, err := num("w", video.CIFWidth)
		if err != nil {
			return nil, err
		}
		h, err := num("h", video.CIFHeight)
		if err != nil {
			return nil, err
		}
		quality, err := num("quality", 0)
		if err != nil {
			return nil, err
		}
		seed, err := num("seed", 42)
		if err != nil {
			return nil, err
		}
		fast, err := num("fast", 0)
		if err != nil {
			return nil, err
		}
		return MJPEG(MJPEGConfig{
			Source:  video.NewSynthetic(w, h, frames, uint64(seed)),
			Quality: quality,
			FastDCT: fast != 0,
		}), nil
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (want mulsum, kmeans or mjpeg)", name)
}

// SpecBounds returns the per-kernel age bounds a spec needs to terminate
// (K-means' iteration break-point); nil when the workload terminates on its
// own.
func SpecBounds(spec string) map[string]int {
	name, argstr, _ := strings.Cut(spec, ":")
	if name != "kmeans" {
		return nil
	}
	iter := 10
	for _, part := range strings.Split(argstr, ",") {
		if k, v, ok := strings.Cut(part, "="); ok && k == "iter" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				iter = n
			}
		}
	}
	return map[string]int{"assign": iter - 1, "refine": iter - 1, "print": iter}
}
