package workloads

import (
	"strings"
	"testing"
)

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec    string
		kernels int
	}{
		{"mulsum", 4},
		{"kmeans", 4},
		{"kmeans:n=100,k=5,iter=3,seed=2,dim=3", 4},
		{"mjpeg:frames=2,w=32,h=32,quality=50,fast=1", 6},
		{"mjpeg", 6},
	}
	for _, c := range cases {
		p, err := FromSpec(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if len(p.Kernels) != c.kernels {
			t.Errorf("%s: %d kernels, want %d", c.spec, len(p.Kernels), c.kernels)
		}
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"nope",
		"kmeans:n=abc",
		"kmeans:noequals",
		"mjpeg:frames=x",
	} {
		if _, err := FromSpec(spec); err == nil {
			t.Errorf("%s: expected error", spec)
		}
	}
	if _, err := FromSpec("nope"); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Error("unknown workload message")
	}
}

func TestSpecBounds(t *testing.T) {
	b := SpecBounds("kmeans:n=100,iter=7")
	if b["assign"] != 6 || b["refine"] != 6 || b["print"] != 7 {
		t.Errorf("bounds %v", b)
	}
	if SpecBounds("mulsum") != nil {
		t.Error("mulsum needs no bounds")
	}
	// Default iteration count when unspecified.
	if b := SpecBounds("kmeans"); b["print"] != 10 {
		t.Errorf("default bounds %v", b)
	}
}

func TestRegisterPayloadsIdempotent(t *testing.T) {
	RegisterPayloads()
	RegisterPayloads() // gob.Register of the same type twice must not panic
}
