package workloads

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/runtime"
	"repro/internal/sift"
	"repro/internal/video"
)

// SIFTConfig parameterizes the SIFT front-end workload.
type SIFTConfig struct {
	// Source provides frames; the luma plane is analyzed.
	Source video.Source
	// Threshold is the extremum magnitude cutoff (0 selects the default).
	Threshold float64
}

// SIFT builds the scale-space keypoint pipeline the paper's §III names as
// its second motivating example. The stages decompose along *different
// dimensions at different granularities*, which is the property the paper
// highlights:
//
//	load          1 instance/frame     whole frame
//	hblur_s       H instances/frame    one image ROW each      (3 scales)
//	transpose_s   1 instance/frame     dimension switch
//	vblur_s       W instances/frame    one image COLUMN each   (3 scales)
//	detranspose_s 1 instance/frame     back to rows
//	dog_l         H instances/frame    one row each            (2 levels)
//	extrema_l     H-2 instances/frame  one interior row each, fetching its
//	                                   row neighbours via offset coordinates
//	collect       1 instance/frame     aggregation
func SIFT(cfg SIFTConfig) *core.Program {
	if cfg.Source == nil {
		panic("workloads: SIFT requires a video source")
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = sift.DefaultThreshold
	}

	b := core.NewBuilder("sift")
	b.Field("image", field.Any, 1, true) // rows of the input frame
	for s := range sift.Sigmas {
		b.Field(fmt.Sprintf("hpass%d", s), field.Any, 1, true) // rows
		b.Field(fmt.Sprintf("hcols%d", s), field.Any, 1, true) // columns
		b.Field(fmt.Sprintf("vcols%d", s), field.Any, 1, true) // blurred columns
		b.Field(fmt.Sprintf("blur%d", s), field.Any, 1, true)  // rows again
	}
	b.Field("dog0", field.Any, 1, true)
	b.Field("dog1", field.Any, 1, true)
	b.Field("mark", field.Int32, 1, true) // interior-row domain (extent H-2)
	b.Field("keys0", field.Any, 1, true)
	b.Field("keys1", field.Any, 1, true)
	b.Field("nkeys", field.Int32, 1, true)

	b.Kernel("load").Age("a").
		Local("rows", field.Any, 1).
		StoreAll("image", core.AgeVar(0), "rows").
		Body(func(c *core.Ctx) error {
			f, err := cfg.Source.Next()
			if err != nil {
				c.Stop()
				return nil
			}
			img := sift.FromLuma(f.Y, f.W, f.H)
			arr := c.Array("rows")
			for y, row := range img {
				arr.Put(field.AnyVal(row), y)
			}
			return nil
		})

	for s, sigma := range sift.Sigmas {
		kern := sift.Kernel(sigma)
		s := s
		b.Kernel(fmt.Sprintf("hblur%d", s)).Age("a").Index("y").
			Local("row", field.Any, 0).
			Local("out", field.Any, 0).
			Fetch("row", "image", core.AgeVar(0), core.Idx("y")).
			Store(fmt.Sprintf("hpass%d", s), core.AgeVar(0), []core.IndexSpec{core.Idx("y")}, "out").
			Body(func(c *core.Ctx) error {
				c.SetObj("out", sift.BlurRow(c.Obj("row").([]float64), kern))
				return nil
			})
		transpose := func(name, in, out string) {
			b.Kernel(name).Age("a").
				Local("rows", field.Any, 1).
				Local("cols", field.Any, 1).
				FetchAll("rows", in, core.AgeVar(0)).
				StoreAll(out, core.AgeVar(0), "cols").
				Body(func(c *core.Ctx) error {
					ra := c.Array("rows")
					img := make(sift.Image, ra.Extent(0))
					for i := range img {
						img[i] = ra.At(i).Obj().([]float64)
					}
					ca := c.Array("cols")
					for i, col := range sift.Transpose(img) {
						ca.Put(field.AnyVal(col), i)
					}
					return nil
				})
		}
		transpose(fmt.Sprintf("transpose%d", s), fmt.Sprintf("hpass%d", s), fmt.Sprintf("hcols%d", s))
		b.Kernel(fmt.Sprintf("vblur%d", s)).Age("a").Index("x").
			Local("col", field.Any, 0).
			Local("out", field.Any, 0).
			Fetch("col", fmt.Sprintf("hcols%d", s), core.AgeVar(0), core.Idx("x")).
			Store(fmt.Sprintf("vcols%d", s), core.AgeVar(0), []core.IndexSpec{core.Idx("x")}, "out").
			Body(func(c *core.Ctx) error {
				c.SetObj("out", sift.BlurRow(c.Obj("col").([]float64), kern))
				return nil
			})
		transpose(fmt.Sprintf("detranspose%d", s), fmt.Sprintf("vcols%d", s), fmt.Sprintf("blur%d", s))
	}

	for l := 0; l < 2; l++ {
		l := l
		b.Kernel(fmt.Sprintf("dog%d", l)).Age("a").Index("y").
			Local("fine", field.Any, 0).
			Local("coarse", field.Any, 0).
			Local("out", field.Any, 0).
			Fetch("fine", fmt.Sprintf("blur%d", l), core.AgeVar(0), core.Idx("y")).
			Fetch("coarse", fmt.Sprintf("blur%d", l+1), core.AgeVar(0), core.Idx("y")).
			Store(fmt.Sprintf("dog%d", l), core.AgeVar(0), []core.IndexSpec{core.Idx("y")}, "out").
			Body(func(c *core.Ctx) error {
				c.SetObj("out", sift.DoGRow(c.Obj("fine").([]float64), c.Obj("coarse").([]float64)))
				return nil
			})
	}

	// mark(a) has extent H-2: the interior-row domain for extrema kernels.
	b.Kernel("mark_interior").Age("a").
		Local("rows", field.Any, 1).
		Local("m", field.Int32, 1).
		FetchAll("rows", "image", core.AgeVar(0)).
		StoreAll("mark", core.AgeVar(0), "m").
		Body(func(c *core.Ctx) error {
			h := c.Array("rows").Extent(0)
			m := c.Array("m")
			for i := 0; i < h-2; i++ {
				m.Put(field.Int32Val(int32(i+1)), i)
			}
			return nil
		})

	for l := 0; l < 2; l++ {
		l := l
		own := fmt.Sprintf("dog%d", l)
		other := fmt.Sprintf("dog%d", 1-l)
		b.Kernel(fmt.Sprintf("extrema%d", l)).Age("a").Index("z").
			Local("m", field.Int32, 0).
			Local("r0", field.Any, 0).Local("r1", field.Any, 0).Local("r2", field.Any, 0).
			Local("o0", field.Any, 0).Local("o1", field.Any, 0).Local("o2", field.Any, 0).
			Local("keys", field.Any, 0).
			Fetch("m", "mark", core.AgeVar(0), core.Idx("z")).
			Fetch("r0", own, core.AgeVar(0), core.Idx("z")).
			Fetch("r1", own, core.AgeVar(0), core.IdxOff("z", 1)).
			Fetch("r2", own, core.AgeVar(0), core.IdxOff("z", 2)).
			Fetch("o0", other, core.AgeVar(0), core.Idx("z")).
			Fetch("o1", other, core.AgeVar(0), core.IdxOff("z", 1)).
			Fetch("o2", other, core.AgeVar(0), core.IdxOff("z", 2)).
			Store(fmt.Sprintf("keys%d", l), core.AgeVar(0), []core.IndexSpec{core.Idx("z")}, "keys").
			Body(func(c *core.Ctx) error {
				y := int(c.Int32("m"))
				rows := [3][]float64{c.Obj("r0").([]float64), c.Obj("r1").([]float64), c.Obj("r2").([]float64)}
				oth := [3][]float64{c.Obj("o0").([]float64), c.Obj("o1").([]float64), c.Obj("o2").([]float64)}
				c.SetObj("keys", sift.ExtremaRow(y, l, rows, oth, threshold))
				return nil
			})
	}

	b.Kernel("collect").Age("a").
		Local("k0", field.Any, 1).
		Local("k1", field.Any, 1).
		Local("n", field.Int32, 0).
		FetchAll("k0", "keys0", core.AgeVar(0)).
		FetchAll("k1", "keys1", core.AgeVar(0)).
		Store("nkeys", core.AgeVar(0), []core.IndexSpec{core.Lit(0)}, "n").
		Body(func(c *core.Ctx) error {
			total := 0
			for _, name := range []string{"k0", "k1"} {
				arr := c.Array(name)
				for i := 0; i < arr.Extent(0); i++ {
					total += len(arr.At(i).Obj().([]sift.Keypoint))
				}
			}
			c.SetInt32("n", int32(total))
			c.Printf("frame %d: %d keypoints\n", c.Age(), total)
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: sift program invalid: %v", err))
	}
	return p
}

// SIFTKeypoints gathers the detected keypoints of one frame from a finished
// node, sorted by (level, y, x) — the order the sequential reference emits.
func SIFTKeypoints(n *runtime.Node, age int) ([]sift.Keypoint, error) {
	var out []sift.Keypoint
	for l := 0; l < 2; l++ {
		s, err := n.Snapshot(fmt.Sprintf("keys%d", l), age)
		if err != nil {
			return nil, err
		}
		for i := 0; i < s.Extent(0); i++ {
			out = append(out, s.At(i).Obj().([]sift.Keypoint)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Level != b.Level {
			return a.Level < b.Level
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return out, nil
}
