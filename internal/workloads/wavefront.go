package workloads

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/field"
)

// WavefrontConfig parameterizes the intra-prediction workload: Blocks x
// Blocks sub-blocks per frame, Frames frames.
type WavefrontConfig struct {
	Blocks int
	Frames int
	Seed   uint64
}

func (c WavefrontConfig) withDefaults() WavefrontConfig {
	if c.Blocks == 0 {
		c.Blocks = 16
	}
	if c.Frames == 0 {
		c.Frames = 4
	}
	return c
}

// Wavefront builds the paper's §III motivating example: H.264-style
// intra-frame prediction, where each sub-block depends on its left and top
// neighbours. The dependency pattern
//
//	predict(x, y) needs pred[x][y-1] and pred[x-1][y]
//
// is expressed with offset index coordinates: the predicted field carries a
// one-element halo (border stores row 0 and column 0), and predict(x, y)
// fetches pred(a)[x][y+1-1] = pred(a)[x][y] (top) and pred(a)[x+1-1][y] ...
// concretely: block (x, y) reads pred[x][y+1] (its top neighbour in halo
// coordinates) and pred[x+1][y] (its left neighbour) and stores
// pred[x+1][y+1]. No kernel orders the blocks explicitly — the dependency
// analyzer discovers the diagonal wavefront on its own, which is exactly the
// "high potential for benefiting from both types of parallelism" the paper
// claims for intra prediction.
func Wavefront(cfg WavefrontConfig) *core.Program {
	cfg = cfg.withDefaults()
	b := core.NewBuilder("wavefront")
	b.Field("input", field.Int32, 2, true) // residual samples per block
	b.Field("pred", field.Int32, 2, true)  // reconstructed blocks, +1 halo

	b.Kernel("load").Age("a").
		Local("frame", field.Int32, 2).
		StoreAll("input", core.AgeVar(0), "frame").
		Body(func(c *core.Ctx) error {
			if c.Age() >= cfg.Frames {
				return nil
			}
			fr := c.Array("frame")
			rng := cfg.Seed ^ uint64(c.Age())*0x9e3779b97f4a7c15
			for x := 0; x < cfg.Blocks; x++ {
				for y := 0; y < cfg.Blocks; y++ {
					rng ^= rng << 13
					rng ^= rng >> 7
					rng ^= rng << 17
					fr.Put(field.Int32Val(int32(rng%64)), x, y)
				}
			}
			return nil
		})

	// Halo: row 0 and column 0 of pred hold the constant boundary value
	// 128 (the H.264 DC default for missing neighbours).
	b.Kernel("border_row").Age("a").Index("y").
		Local("v", field.Int32, 0).
		Local("out", field.Int32, 0).
		Fetch("v", "input", core.AgeVar(0), core.Lit(0), core.Idx("y")).
		Store("pred", core.AgeVar(0), []core.IndexSpec{core.Lit(0), core.IdxOff("y", 1)}, "out").
		Body(func(c *core.Ctx) error {
			c.SetInt32("out", 128)
			return nil
		})
	b.Kernel("border_col").Age("a").Index("x").
		Local("v", field.Int32, 0).
		Local("out", field.Int32, 0).
		Fetch("v", "input", core.AgeVar(0), core.Idx("x"), core.Lit(0)).
		Store("pred", core.AgeVar(0), []core.IndexSpec{core.IdxOff("x", 1), core.Lit(0)}, "out").
		Body(func(c *core.Ctx) error {
			c.SetInt32("out", 128)
			return nil
		})
	b.Kernel("border_corner").Age("a").
		Local("v", field.Int32, 0).
		Local("out", field.Int32, 0).
		Fetch("v", "input", core.AgeVar(0), core.Lit(0), core.Lit(0)).
		Store("pred", core.AgeVar(0), []core.IndexSpec{core.Lit(0), core.Lit(0)}, "out").
		Body(func(c *core.Ctx) error {
			c.SetInt32("out", 128)
			return nil
		})

	b.Kernel("predict").Age("a").Index("x", "y").
		Local("cur", field.Int32, 0).
		Local("left", field.Int32, 0).
		Local("top", field.Int32, 0).
		Local("rec", field.Int32, 0).
		Fetch("cur", "input", core.AgeVar(0), core.Idx("x"), core.Idx("y")).
		Fetch("top", "pred", core.AgeVar(0), core.Idx("x"), core.IdxOff("y", 1)).
		Fetch("left", "pred", core.AgeVar(0), core.IdxOff("x", 1), core.Idx("y")).
		Store("pred", core.AgeVar(0), []core.IndexSpec{core.IdxOff("x", 1), core.IdxOff("y", 1)}, "rec").
		Body(func(c *core.Ctx) error {
			c.SetInt32("rec", PredictBlock(c.Int32("cur"), c.Int32("left"), c.Int32("top")))
			return nil
		})

	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("workloads: wavefront program invalid: %v", err))
	}
	return p
}

// PredictBlock is the per-block reconstruction: DC prediction from the left
// and top neighbours plus the residual, clamped to sample range. Shared by
// the P2G kernel and the sequential reference.
func PredictBlock(residual, left, top int32) int32 {
	rec := (left+top)/2 + residual
	if rec < 0 {
		rec = 0
	}
	if rec > 255 {
		rec = 255
	}
	return rec
}

// WavefrontSequential computes the reference reconstruction for one frame of
// residuals in raster order.
func WavefrontSequential(frame [][]int32) [][]int32 {
	n := len(frame)
	rec := make([][]int32, n)
	for x := range rec {
		rec[x] = make([]int32, n)
	}
	at := func(x, y int) int32 {
		if x < 0 || y < 0 {
			return 128
		}
		return rec[x][y]
	}
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			rec[x][y] = PredictBlock(frame[x][y], at(x, y-1), at(x-1, y))
		}
	}
	return rec
}
