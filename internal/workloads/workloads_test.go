package workloads

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/field"
	"repro/internal/kmeans"
	"repro/internal/mjpeg"
	"repro/internal/runtime"
	"repro/internal/sift"
	"repro/internal/video"
)

func TestMulSumGolden(t *testing.T) {
	var out strings.Builder
	rep, err := runtime.Run(MulSum(), runtime.Options{Workers: 1, MaxAge: 1, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	want := "10 11 12 13 14 \n20 22 24 26 28 \n25 27 29 31 33 \n50 54 58 62 66 \n"
	if out.String() != want {
		t.Errorf("output %q, want %q", out.String(), want)
	}
	if rep.Kernel("print").Instances != 2 {
		t.Error("print instances")
	}
}

func TestMulSumFusable(t *testing.T) {
	if _, err := core.Fuse(MulSum(), "mul2", "plus5"); err != nil {
		t.Fatalf("mul2/plus5 should be fusable: %v", err)
	}
}

func TestMJPEGMatchesStandaloneBaseline(t *testing.T) {
	const frames = 5
	// Standalone single-threaded baseline.
	var baseline bytes.Buffer
	enc := &mjpeg.Encoder{Quality: 80}
	n, err := enc.EncodeStream(video.NewSynthetic(64, 48, frames, 7), &baseline)
	if err != nil || n != frames {
		t.Fatalf("baseline: %d frames, %v", n, err)
	}

	// P2G dataflow version on the identical source.
	var streamed bytes.Buffer
	prog := MJPEG(MJPEGConfig{
		Source:  video.NewSynthetic(64, 48, frames, 7),
		Quality: 80,
		Out:     &streamed,
	})
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}

	// Bit-exact equality: the P2G pipeline runs the same substrate code.
	got, err := MJPEGStream(node, frames)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, baseline.Bytes()) {
		t.Errorf("P2G bitstream (%d bytes) differs from baseline (%d bytes)", len(got), baseline.Len())
	}
	// The streaming writer received the frames in display order.
	if !bytes.Equal(streamed.Bytes(), baseline.Bytes()) {
		t.Error("streamed output differs from baseline (ordering broken?)")
	}

	// Instance accounting: frames+1 read and vlc instances (the paper's
	// "51 instances for 50 frames"), one DCT instance per macroblock.
	if got := rep.Kernel("read_splityuv").Instances; got != frames+1 {
		t.Errorf("read instances = %d, want %d", got, frames+1)
	}
	if got := rep.Kernel("vlc_write").Instances; got != frames+1 {
		t.Errorf("vlc instances = %d, want %d", got, frames+1)
	}
	if got := rep.Kernel("yDCT").Instances; got != int64(frames*48) { // 64x48 → 8x6 blocks
		t.Errorf("yDCT instances = %d, want %d", got, frames*48)
	}
	if got := rep.Kernel("uDCT").Instances; got != int64(frames*12) { // 32x24 → 4x3 blocks
		t.Errorf("uDCT instances = %d, want %d", got, frames*12)
	}

	// Every frame decodes.
	for i, fr := range mjpeg.SplitFrames(got) {
		if _, err := mjpeg.DecodeFrameJPEG(fr); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestMJPEGPaperGeometry(t *testing.T) {
	if testing.Short() {
		t.Skip("CIF encode in short mode")
	}
	const frames = 2
	prog := MJPEG(MJPEGConfig{Source: video.NewCIFSource(frames, 1), FastDCT: true})
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The counts behind Table II: 1584 luma + 2x396 chroma instances/frame.
	if got := rep.Kernel("yDCT").Instances; got != frames*1584 {
		t.Errorf("yDCT instances = %d, want %d", got, frames*1584)
	}
	if got := rep.Kernel("uDCT").Instances; got != frames*396 {
		t.Errorf("uDCT instances = %d, want %d", got, frames*396)
	}
	if got := rep.Kernel("vDCT").Instances; got != frames*396 {
		t.Errorf("vDCT instances = %d, want %d", got, frames*396)
	}
}

func TestMJPEGDeterministicAcrossWorkers(t *testing.T) {
	const frames = 3
	var ref []byte
	for _, workers := range []int{1, 4} {
		prog := MJPEG(MJPEGConfig{Source: video.NewSynthetic(32, 32, frames, 3)})
		node, err := runtime.NewNode(prog, runtime.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := node.Run(); err != nil {
			t.Fatal(err)
		}
		stream, err := MJPEGStream(node, frames)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = stream
		} else if !bytes.Equal(ref, stream) {
			t.Errorf("workers=%d produced a different bitstream", workers)
		}
	}
}

func TestKMeansMatchesSequential(t *testing.T) {
	cfg := KMeansConfig{N: 300, Dim: 2, K: 10, Iter: 6, Seed: 11}
	prog := KMeans(cfg)
	node, err := runtime.NewNode(prog, KMeansOptions(cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}

	// Table III accounting.
	if got := rep.Kernel("init").Instances; got != 1 {
		t.Errorf("init instances = %d", got)
	}
	if got := rep.Kernel("assign").Instances; got != int64(cfg.N*cfg.Iter) {
		t.Errorf("assign instances = %d, want %d", got, cfg.N*cfg.Iter)
	}
	if got := rep.Kernel("refine").Instances; got != int64(cfg.K*cfg.Iter) {
		t.Errorf("refine instances = %d, want %d", got, cfg.K*cfg.Iter)
	}
	if got := rep.Kernel("print").Instances; got != int64(cfg.Iter+1) {
		t.Errorf("print instances = %d, want %d", got, cfg.Iter+1)
	}

	// Bit-exact equivalence with the sequential baseline.
	want := kmeans.Sequential(kmeans.Generate(cfg.N, cfg.Dim, cfg.K, cfg.Seed), cfg.K, cfg.Iter)
	got, err := KMeansCentroids(node, cfg.Iter)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cfg.K {
		t.Fatalf("%d centroids", len(got))
	}
	for c := range got {
		if kmeans.SqDist(got[c], want.Centroids[c]) != 0 {
			t.Fatalf("centroid %d: P2G %v, sequential %v", c, got[c], want.Centroids[c])
		}
	}
}

func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	cfg := KMeansConfig{N: 200, Dim: 3, K: 8, Iter: 4, Seed: 2}
	var ref []kmeans.Point
	for _, workers := range []int{1, 2, 8} {
		node, err := runtime.NewNode(KMeans(cfg), KMeansOptions(cfg, workers))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := node.Run(); err != nil {
			t.Fatal(err)
		}
		cents, err := KMeansCentroids(node, cfg.Iter)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = cents
		} else {
			for c := range cents {
				if kmeans.SqDist(ref[c], cents[c]) != 0 {
					t.Fatalf("workers=%d: centroid %d differs", workers, c)
				}
			}
		}
	}
}

func TestKMeansPrintOutput(t *testing.T) {
	cfg := KMeansConfig{N: 50, Dim: 2, K: 5, Iter: 3, Seed: 1}
	var out strings.Builder
	opts := KMeansOptions(cfg, 1)
	opts.Output = &out
	if _, err := runtime.Run(KMeans(cfg), opts); err != nil {
		t.Fatal(err)
	}
	for a := 0; a <= cfg.Iter; a++ {
		if !strings.Contains(out.String(), fmt.Sprintf("iteration %d:", a)) {
			t.Errorf("missing print for iteration %d in %q", a, out.String())
		}
	}
}

func TestKMeansDefaultsArePaperParameters(t *testing.T) {
	c := KMeansConfig{}.withDefaults()
	if c.N != 2000 || c.K != 100 || c.Iter != 10 {
		t.Errorf("defaults %+v do not match §VIII-B", c)
	}
}

func TestMJPEGRequiresSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil source should panic")
		}
	}()
	MJPEG(MJPEGConfig{})
}

func TestMJPEGStreamMissingFrame(t *testing.T) {
	prog := MJPEG(MJPEGConfig{Source: video.NewSynthetic(16, 16, 1, 1)})
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := MJPEGStream(node, 5); err == nil {
		t.Error("requesting more frames than encoded should error")
	}
}

// TestWavefrontMatchesSequential verifies the §III intra-prediction
// workload: the analyzer discovers the diagonal wavefront from the offset
// fetches, and the result matches a raster-order sequential reference.
func TestWavefrontMatchesSequential(t *testing.T) {
	cfg := WavefrontConfig{Blocks: 12, Frames: 3, Seed: 5}
	prog := Wavefront(cfg)
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	if got := rep.Kernel("predict").Instances; got != int64(cfg.Frames*cfg.Blocks*cfg.Blocks) {
		t.Errorf("predict instances = %d, want %d", got, cfg.Frames*cfg.Blocks*cfg.Blocks)
	}
	if got := rep.Kernel("load").Instances; got != int64(cfg.Frames+1) {
		t.Errorf("load instances = %d", got)
	}
	for a := 0; a < cfg.Frames; a++ {
		in, err := node.Snapshot("input", a)
		if err != nil {
			t.Fatal(err)
		}
		frame := make([][]int32, cfg.Blocks)
		for x := range frame {
			frame[x] = make([]int32, cfg.Blocks)
			for y := range frame[x] {
				frame[x][y] = in.At(x, y).Int32()
			}
		}
		want := WavefrontSequential(frame)
		pred, err := node.Snapshot("pred", a)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < cfg.Blocks; x++ {
			for y := 0; y < cfg.Blocks; y++ {
				if got := pred.At(x+1, y+1).Int32(); got != want[x][y] {
					t.Fatalf("frame %d block (%d,%d): %d, want %d", a, x, y, got, want[x][y])
				}
			}
		}
		// Halo row/col are the DC default.
		if pred.At(0, 3).Int32() != 128 || pred.At(3, 0).Int32() != 128 {
			t.Error("halo not initialized to 128")
		}
	}
}

func TestWavefrontDeterministicAcrossWorkers(t *testing.T) {
	cfg := WavefrontConfig{Blocks: 8, Frames: 2, Seed: 9}
	var ref *field.Array
	for _, w := range []int{1, 8} {
		node, err := runtime.NewNode(Wavefront(cfg), runtime.Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := node.Run(); err != nil {
			t.Fatal(err)
		}
		s, _ := node.Snapshot("pred", cfg.Frames-1)
		if ref == nil {
			ref = s
		} else if !s.Equal(ref) {
			t.Fatalf("workers=%d produced different reconstruction", w)
		}
	}
}

// TestSIFTMatchesSequential runs the §III SIFT front-end through P2G and
// compares keypoints exactly with the sequential reference.
func TestSIFTMatchesSequential(t *testing.T) {
	const frames = 2
	prog := SIFT(SIFTConfig{Source: video.NewSynthetic(48, 40, frames, 13)})
	node, err := runtime.NewNode(prog, runtime.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stalled) != 0 {
		t.Fatalf("stalled: %v", rep.Stalled)
	}
	// Stage granularities: rows for hblur, columns for vblur, interior rows
	// for extrema — the multi-dimensional decomposition §III describes.
	if got := rep.Kernel("hblur0").Instances; got != frames*40 {
		t.Errorf("hblur0 instances = %d, want %d (one per row)", got, frames*40)
	}
	if got := rep.Kernel("vblur0").Instances; got != frames*48 {
		t.Errorf("vblur0 instances = %d, want %d (one per column)", got, frames*48)
	}
	if got := rep.Kernel("extrema0").Instances; got != frames*(40-2) {
		t.Errorf("extrema0 instances = %d, want %d (one per interior row)", got, frames*(40-2))
	}
	src := video.NewSynthetic(48, 40, frames, 13)
	for a := 0; a < frames; a++ {
		f, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		want := sift.Sequential(sift.FromLuma(f.Y, f.W, f.H), sift.DefaultThreshold)
		got, err := SIFTKeypoints(node, a)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want.Keypoints) {
			t.Fatalf("frame %d: %d keypoints, want %d", a, len(got), len(want.Keypoints))
		}
		for i := range got {
			if got[i] != want.Keypoints[i] {
				t.Fatalf("frame %d keypoint %d: %+v, want %+v", a, i, got[i], want.Keypoints[i])
			}
		}
		// The collect kernel recorded the same count.
		n, _ := node.Snapshot("nkeys", a)
		if int(n.At(0).Int32()) != len(want.Keypoints) {
			t.Errorf("frame %d: collect counted %d, want %d", a, n.At(0).Int32(), len(want.Keypoints))
		}
	}
}

func TestSIFTRequiresSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil source should panic")
		}
	}()
	SIFT(SIFTConfig{})
}
