package p2g

// The scheduler fast-path metrics (steals, event batches, per-worker queue
// depth) must surface through a caller-supplied registry — that is what
// /metricz dumps — not only through the final report.

import (
	"io"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runtime"
)

func TestSchedulerMetricsSurfaceInRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	n, err := runtime.NewNode(MulSum(), runtime.Options{
		Workers: 3,
		MaxAge:  8,
		Metrics: reg,
		Output:  io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	dump := sb.String()
	for _, name := range []string{
		obs.MStealsTotal,
		obs.MEventBatchesTotal,
		obs.MWorkerQueueDepth + `{worker="0"}`,
		obs.MWorkerQueueDepth + `{worker="2"}`,
	} {
		if !strings.Contains(dump, name) {
			t.Errorf("registry dump missing %q; dump:\n%s", name, dump)
		}
	}
}
