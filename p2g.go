// Package p2g is the public API of this P2G reproduction: a framework for
// distributed real-time processing of multimedia data (Espeland et al.,
// ICPP 2011).
//
// P2G programs are declarative dataflow graphs over aged, write-once,
// multi-dimensional fields. Kernels declare which field slices they fetch and
// store; the runtime's dependency analyzer derives all data and task
// parallelism from those declarations and dispatches kernel instances
// oldest-age-first across a worker pool.
//
// Build a program with NewBuilder (or compile kernel-language source with
// package repro/internal/lang via the p2gc/p2grun tools), then execute it:
//
//	prog := p2g.MulSum()
//	report, err := p2g.Run(prog, p2g.Options{Workers: 4, MaxAge: 10})
//
// The subpackages remain importable for advanced use; this package re-exports
// the surface a typical application needs.
package p2g

import (
	"io"

	"repro/internal/core"
	"repro/internal/deadline"
	"repro/internal/field"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/workloads"
)

// Program-model types.
type (
	// Program is a complete P2G program: fields, kernels, timers.
	Program = core.Program
	// Builder assembles a Program fluently.
	Builder = core.Builder
	// KernelBuilder assembles one kernel declaration.
	KernelBuilder = core.KernelBuilder
	// Ctx is the execution context passed to kernel bodies.
	Ctx = core.Ctx
	// AgeExpr is an age coordinate (AgeVar / AgeAt).
	AgeExpr = core.AgeExpr
	// IndexSpec is an index coordinate (Idx / Lit).
	IndexSpec = core.IndexSpec
	// Kind enumerates field element types.
	Kind = field.Kind
	// Value is the dynamic scalar/array value representation.
	Value = field.Value
	// Array is a local multi-dimensional array.
	Array = field.Array
)

// Field element kinds.
const (
	Int32   = field.Int32
	Int64   = field.Int64
	Float32 = field.Float32
	Float64 = field.Float64
	Uint8   = field.Uint8
	Bool    = field.Bool
	String  = field.String
	Any     = field.Any
)

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder { return core.NewBuilder(name) }

// Int32Value wraps an int32 scalar.
func Int32Value(v int32) Value { return field.Int32Val(v) }

// Int64Value wraps an int64 scalar.
func Int64Value(v int64) Value { return field.Int64Val(v) }

// Float64Value wraps a float64 scalar.
func Float64Value(v float64) Value { return field.Float64Val(v) }

// AnyValue wraps an arbitrary Go payload.
func AnyValue(v any) Value { return field.AnyVal(v) }

// NewArray creates a local array with the given element kind and extents.
func NewArray(kind Kind, extents ...int) *Array { return field.NewArray(kind, extents...) }

// AgeVar returns the age expression a+off over the kernel's age variable.
func AgeVar(off int) AgeExpr { return core.AgeVar(off) }

// AgeAt returns an absolute age expression.
func AgeAt(age int) AgeExpr { return core.AgeAt(age) }

// Idx returns an index coordinate bound to an index variable.
func Idx(name string) IndexSpec { return core.Idx(name) }

// IdxOff returns an index coordinate bound to an index variable plus a
// constant offset (wavefront dependencies, e.g. pred(a)[x+1][y]).
func IdxOff(name string, off int) IndexSpec { return core.IdxOff(name, off) }

// Lit returns a constant index coordinate.
func Lit(v int) IndexSpec { return core.Lit(v) }

// All returns a slab coordinate spanning a whole dimension (one macroblock
// row per instance, e.g. frames(a)[b][]).
func All() IndexSpec { return core.All() }

// Fuse merges kernel down into kernel up (the LLS task-combining transform
// of the paper's figure 4).
func Fuse(p *Program, up, down string) (*Program, error) { return core.Fuse(p, up, down) }

// Runtime types.
type (
	// Options configures an execution node.
	Options = runtime.Options
	// SchedulerKind selects the ready-queue implementation
	// (Options.Scheduler).
	SchedulerKind = runtime.SchedulerKind
	// Node is a single execution node.
	Node = runtime.Node
	// Report is the per-run instrumentation summary (Tables II/III).
	Report = runtime.Report
	// KernelStats is one row of the instrumentation report.
	KernelStats = runtime.KernelStats
	// TimerSet holds a program's global deadline timers.
	TimerSet = deadline.TimerSet
	// Clock abstracts time for deadline tests.
	Clock = deadline.Clock
)

// Observability types (set Options.Metrics / Options.Tracer, or serve them
// with NewObsServer).
type (
	// MetricsRegistry collects counters, gauges and latency histograms.
	MetricsRegistry = obs.Registry
	// Tracer records kernel-instance lifecycle spans into a bounded ring,
	// exportable as Chrome trace_event JSON (chrome://tracing, Perfetto).
	Tracer = obs.Tracer
	// ObsServer serves the live /metricz, /statusz and /tracez endpoints.
	ObsServer = obs.Server
	// StageTotals is the per-stage latency attribution of a run
	// (Report.Stages): where worker-seconds and instance lifetimes went.
	StageTotals = runtime.StageTotals
	// NodeTrace is one node's span buffer with the clock alignment the
	// merged cluster trace needs.
	NodeTrace = obs.NodeTrace
)

// WriteMergedChromeTrace merges span bundles from several nodes into one
// clock-aligned Chrome trace_event file (one process per node).
func WriteMergedChromeTrace(w io.Writer, nodes []NodeTrace) error {
	return obs.WriteMergedChromeTrace(w, nodes)
}

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer creates a kernel-instance tracer holding up to capacity spans
// (<=0 selects the default capacity).
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// NewObsServer creates an unstarted introspection HTTP server; any of reg,
// tracer and status may be nil.
func NewObsServer(addr string, reg *MetricsRegistry, tracer *Tracer, status func() any) *ObsServer {
	return obs.NewServer(addr, reg, tracer, status)
}

// Scheduler implementations (Options.Scheduler).
const (
	// SchedStealing is the default work-stealing scheduler: per-worker
	// age-aware deques with an age epoch preserving oldest-age-first order.
	SchedStealing = runtime.SchedStealing
	// SchedGlobal is the reference single global priority queue, kept
	// selectable for A/B benchmarking.
	SchedGlobal = runtime.SchedGlobal
)

// NewNode builds an execution node for a program.
func NewNode(p *Program, opts Options) (*Node, error) { return runtime.NewNode(p, opts) }

// Run executes a program on a fresh node and returns its report.
func Run(p *Program, opts Options) (*Report, error) { return runtime.Run(p, opts) }

// NewFakeClock returns a manually advanced clock for deadline testing.
func NewFakeClock() *deadline.FakeClock { return deadline.NewFakeClock() }

// Dependency-graph types (figures 2-4).
type (
	// Intermediate is the implicit static dependency graph.
	Intermediate = graph.Intermediate
	// Final is the merged kernel-to-kernel graph.
	Final = graph.Final
	// DCDAG is the age-unrolled dynamic dependency graph.
	DCDAG = graph.DCDAG
)

// BuildIntermediate derives the intermediate implicit static graph.
func BuildIntermediate(p *Program) *Intermediate { return graph.BuildIntermediate(p) }

// BuildFinal derives the final implicit static graph.
func BuildFinal(p *Program) *Final { return graph.BuildFinal(p) }

// Unroll expands the final graph into a DC-DAG over ages 0..maxAge.
func Unroll(g *Final, maxAge int) *DCDAG { return graph.Unroll(g, maxAge) }

// Workload constructors (the paper's evaluation programs).
type (
	// MJPEGConfig parameterizes the Motion JPEG workload.
	MJPEGConfig = workloads.MJPEGConfig
	// KMeansConfig parameterizes the K-means workload.
	KMeansConfig = workloads.KMeansConfig
	// WavefrontConfig parameterizes the intra-prediction workload.
	WavefrontConfig = workloads.WavefrontConfig
	// SIFTConfig parameterizes the SIFT front-end workload.
	SIFTConfig = workloads.SIFTConfig
)

// MulSum builds the figure 5 mul2/plus5 example program.
func MulSum() *Program { return workloads.MulSum() }

// MJPEG builds the figure 8 Motion JPEG encoding program.
func MJPEG(cfg MJPEGConfig) *Program { return workloads.MJPEG(cfg) }

// KMeans builds the figure 7 K-means clustering program.
func KMeans(cfg KMeansConfig) *Program { return workloads.KMeans(cfg) }

// Wavefront builds the §III intra-prediction program (wavefront-dependent
// sub-blocks).
func Wavefront(cfg WavefrontConfig) *Program { return workloads.Wavefront(cfg) }

// SIFT builds the §III SIFT front-end program (multi-scale blur, DoG,
// scale-space extrema).
func SIFT(cfg SIFTConfig) *Program { return workloads.SIFT(cfg) }

// KMeansOptions returns runtime options bounding K-means to cfg.Iter
// iterations.
func KMeansOptions(cfg KMeansConfig, workers int) Options {
	return workloads.KMeansOptions(cfg, workers)
}

// MJPEGStream collects the encoded frames from a finished node in age order.
func MJPEGStream(n *Node, frames int) ([]byte, error) { return workloads.MJPEGStream(n, frames) }
