package p2g

import (
	"os"
	"strings"
	"testing"

	"repro/internal/video"
)

// readFile is a tiny indirection so the benchmarks can read testdata without
// importing os there directly.
func readFile(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// TestPublicAPIQuickstart exercises the facade end to end: building a
// program through the re-exported builder, running it, and inspecting graphs
// — the exact surface the examples use.
func TestPublicAPIQuickstart(t *testing.T) {
	b := NewBuilder("api")
	b.Field("data", Int32, 1, true)
	b.Field("out", Int32, 1, true)
	b.Kernel("src").
		Local("vals", Int32, 1).
		StoreAll("data", AgeAt(0), "vals").
		Body(func(c *Ctx) error {
			for i := 0; i < 3; i++ {
				c.Array("vals").Put(Int32Value(int32(i)), i)
			}
			return nil
		})
	b.Kernel("double").Age("a").Index("x").
		Local("v", Int32, 0).
		Fetch("v", "data", AgeVar(0), Idx("x")).
		Store("out", AgeVar(0), []IndexSpec{Idx("x")}, "v").
		Body(func(c *Ctx) error {
			c.SetInt32("v", c.Int32("v")*2)
			return nil
		})
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := node.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kernel("double").Instances != 3 {
		t.Errorf("instances %v", rep.Kernels)
	}
	s, err := node.Snapshot("out", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(1).Int32() != 2 {
		t.Errorf("out = %v", s)
	}
	if dot := BuildFinal(prog).DOT("api"); !strings.Contains(dot, "double") {
		t.Error("final graph DOT")
	}
	if g := Unroll(BuildFinal(prog), 1); len(g.Nodes) != 4 {
		t.Errorf("DC-DAG nodes %d", len(g.Nodes))
	}
	if BuildIntermediate(prog) == nil {
		t.Error("intermediate graph")
	}
}

func TestPublicWorkloadConstructors(t *testing.T) {
	if MulSum() == nil {
		t.Fatal("MulSum")
	}
	if p := KMeans(KMeansConfig{N: 10, K: 2, Iter: 2}); p == nil {
		t.Fatal("KMeans")
	}
	opts := KMeansOptions(KMeansConfig{Iter: 3}, 2)
	if opts.KernelMaxAge["print"] != 3 {
		t.Errorf("KMeansOptions %v", opts.KernelMaxAge)
	}
	if _, err := Fuse(MulSum(), "mul2", "plus5"); err != nil {
		t.Fatal(err)
	}
	clk := NewFakeClock()
	if clk.Now().IsZero() {
		t.Error("fake clock")
	}
}

// TestFacadeWorkloadsRun drives every workload constructor through the
// facade end to end at small sizes.
func TestFacadeWorkloadsRun(t *testing.T) {
	// MJPEG + stream collection.
	node, err := NewNode(MJPEG(MJPEGConfig{Source: videoSource(2)}), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Run(); err != nil {
		t.Fatal(err)
	}
	stream, err := MJPEGStream(node, 2)
	if err != nil || len(stream) == 0 {
		t.Fatalf("MJPEGStream: %d bytes, %v", len(stream), err)
	}
	// Wavefront.
	if _, err := Run(Wavefront(WavefrontConfig{Blocks: 4, Frames: 1}), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	// SIFT.
	if _, err := Run(SIFT(SIFTConfig{Source: videoSource(1)}), Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	// Value constructors.
	if Int32Value(3).Int32() != 3 || Int64Value(4).Int64() != 4 || Float64Value(2.5).Float64() != 2.5 {
		t.Error("value constructors")
	}
	if AnyValue("x").Obj() != "x" {
		t.Error("AnyValue")
	}
	arr := NewArray(Int32, 2)
	arr.Set(Int32Value(7), 1)
	if arr.At(1).Int32() != 7 {
		t.Error("NewArray")
	}
	// Index spec helpers.
	if IdxOff("x", 1).String() != "x+1" || All().String() != "" || Lit(2).String() != "2" {
		t.Error("index spec helpers")
	}
}

func videoSource(frames int) video.Source { return video.NewSynthetic(32, 32, frames, 3) }
