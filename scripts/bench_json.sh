#!/bin/sh
# bench_json.sh — run the scheduler A/B benchmarks (figure 9/10 sweeps under
# both Options.Scheduler settings plus the dispatch benchmarks) and emit the
# results as BENCH_scheduler.json in the repo root.
#
# Usage: scripts/bench_json.sh [benchtime]   (default 1s)
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
out=BENCH_scheduler.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -bench 'Fig9MJPEG|Fig10KMeans|Dispatch' -benchtime="$benchtime" \
	-benchmem -count=1 -run xxx . ./internal/runtime/ | tee "$raw"

awk -v benchtime="$benchtime" '
BEGIN { n = 0 }
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)
	iters = $2; nsop = ""; bop = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") nsop = $i
		if ($(i + 1) == "B/op") bop = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
	if (nsop != "") line = line sprintf(", \"ns_per_op\": %s", nsop)
	if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
	if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
	line = line "}"
	bench[n++] = line
}
END {
	print "{"
	printf "  \"benchtime\": \"%s\",\n", benchtime
	print "  \"benchmarks\": ["
	for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
	print "  ]"
	print "}"
}' "$raw" >"$out"

echo "wrote $out"
