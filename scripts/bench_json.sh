#!/bin/sh
# bench_json.sh — run a benchmark suite and emit the results as JSON in the
# repo root.
#
# Suites:
#   scheduler  figure 9/10 sweeps under both Options.Scheduler settings plus
#              the dispatch benchmarks           -> BENCH_scheduler.json
#   memory     figure 9/10 on the default scheduler plus the typed memory-path
#              benchmarks (slab store, wire encode) -> BENCH_memory.json
#   transport  distributed MJPEG encode over TCP loopback, batched typed
#              frames vs the gob-per-store baseline -> BENCH_transport.json
#   obs        figure 9/10 workloads with observability off / metrics /
#              full tracing (overhead A/B)          -> BENCH_obs.json
#   lang       kernel-language back-end A/B: closure interpreter vs register
#              bytecode vs native Go on three kernel bodies -> BENCH_lang.json
#   all        every suite
#
# Usage: scripts/bench_json.sh [benchtime] [suite]   (default 1s scheduler)
set -eu
cd "$(dirname "$0")/.."

benchtime=${1:-1s}
suite=${2:-scheduler}

# emit <out> <bench regex> <packages...>: run the benchmarks and convert the
# standard `go test -bench` output lines into a JSON document.
emit() {
	out=$1
	pattern=$2
	shift 2
	raw=$(mktemp)
	trap 'rm -f "$raw"' EXIT

	go test -bench "$pattern" -benchtime="$benchtime" \
		-benchmem -count=1 -run xxx "$@" | tee "$raw"

	awk -v benchtime="$benchtime" '
	BEGIN { n = 0 }
	/^Benchmark/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		iters = $2; nsop = ""; bop = ""; allocs = ""; wire = ""; replayed = ""
		for (i = 3; i < NF; i++) {
			if ($(i + 1) == "ns/op") nsop = $i
			if ($(i + 1) == "B/op") bop = $i
			if ($(i + 1) == "allocs/op") allocs = $i
			if ($(i + 1) == "wire-B/op") wire = $i
			if ($(i + 1) == "replayed-gens/op") replayed = $i
		}
		line = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
		if (nsop != "") line = line sprintf(", \"ns_per_op\": %s", nsop)
		if (wire != "") line = line sprintf(", \"wire_bytes_per_op\": %s", wire)
		if (replayed != "") line = line sprintf(", \"replayed_gens_per_op\": %s", replayed)
		if (bop != "") line = line sprintf(", \"bytes_per_op\": %s", bop)
		if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
		line = line "}"
		bench[n++] = line
	}
	END {
		print "{"
		printf "  \"benchtime\": \"%s\",\n", benchtime
		print "  \"benchmarks\": ["
		for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
		print "  ]"
		print "}"
	}' "$raw" >"$out"

	rm -f "$raw"
	trap - EXIT
	echo "wrote $out"
}

case "$suite" in
scheduler)
	emit BENCH_scheduler.json 'Fig9MJPEG|Fig10KMeans|Dispatch|Analyzer' . ./internal/runtime/
	;;
memory)
	emit BENCH_memory.json 'Fig9MJPEG$|Fig10KMeans$|FieldStoreSlab|WireEncodeFrame|FieldFetchView' .
	;;
transport)
	emit BENCH_transport.json 'TransportMJPEG|FrameEncodeScatter' .
	;;
obs)
	emit BENCH_obs.json 'ObsOverhead' .
	;;
lang)
	emit BENCH_lang.json 'Lang(MulSum|KMeans|Wavefront)' .
	;;
all)
	emit BENCH_scheduler.json 'Fig9MJPEG|Fig10KMeans|Dispatch|Analyzer' . ./internal/runtime/
	emit BENCH_memory.json 'Fig9MJPEG$|Fig10KMeans$|FieldStoreSlab|WireEncodeFrame|FieldFetchView' .
	emit BENCH_transport.json 'TransportMJPEG|FrameEncodeScatter' .
	emit BENCH_obs.json 'ObsOverhead' .
	emit BENCH_lang.json 'Lang(MulSum|KMeans|Wavefront)' .
	;;
*)
	echo "unknown suite: $suite (want scheduler, memory, transport, obs, lang, or all)" >&2
	exit 2
	;;
esac
